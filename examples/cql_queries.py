#!/usr/bin/env python3
"""Defining queries with the CQL-like language and inspecting SIC propagation.

This example compiles the exact statements of Table 1 with the bundled
CQL-like parser, executes one of them step by step on a hand-fed stream, and
prints how the source information content flows from source tuples to the
query result — the mechanism behind Figure 2 of the paper.

Run with::

    python examples/cql_queries.py
"""

from repro.core import SicAssigner, Tuple
from repro.core.tuples import Batch
from repro.streaming import compile_query
from repro.workloads.aggregate import AVG_STATEMENT, COUNT_STATEMENT, MAX_STATEMENT

TOP5_STATEMENT = (
    "Select Top5(AllSrcCPU.id) "
    "From AllSrcCPU[Range 1 sec], AllSrcMem[Range 1 sec] "
    "Where AllSrcMem.free >= 100,000 and AllSrcCPU.id = AllSrcMem.id"
)
COV_STATEMENT = (
    "Select Cov(SrcCPU1.value, SrcCPU2.value) "
    "From SrcCPU1[Range 1 sec], SrcCPU2[Range 1 sec]"
)


def show_compiled_queries():
    print("Table 1 statements compiled to query graphs:\n")
    statements = {
        "AVG": (AVG_STATEMENT, {"Src": ["sensor-1"]}),
        "MAX": (MAX_STATEMENT, {"Src": ["sensor-1"]}),
        "COUNT": (COUNT_STATEMENT, {"Src": ["sensor-1"]}),
        "TOP-5": (TOP5_STATEMENT, {"AllSrcCPU": [f"cpu{i}" for i in range(3)],
                                   "AllSrcMem": [f"mem{i}" for i in range(3)]}),
        "COV": (COV_STATEMENT, None),
    }
    for name, (statement, sources) in statements.items():
        graph = compile_query(statement, query_id=name.lower(), sources=sources)
        operators = ", ".join(sorted({op.name.split("[")[0] for op in graph.operators.values()}))
        print(f"  {name:<6} {graph.num_operators:>2} operators, "
              f"{graph.num_sources} source(s): {operators}")
    print()


def trace_sic_through_a_query():
    print("SIC propagation through the COUNT query (one 1-second window):\n")
    graph = compile_query(COUNT_STATEMENT, query_id="count-demo", sources={"Src": ["sensor-1"]})
    fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))

    # Ten readings in one second from a single source; the SIC assigner stamps
    # them with 1 / (|T_s^S| * |S|) using the observed arrival rate.
    readings = [30.0, 75.0, 52.0, 18.0, 90.0, 66.0, 41.0, 87.0, 12.0, 55.0]
    tuples = [
        Tuple(timestamp=0.05 + i * 0.1, sic=0.0, values={"v": v}, source_id="sensor-1")
        for i, v in enumerate(readings)
    ]
    assigner = SicAssigner("count-demo", num_sources=1, stw_seconds=1.0,
                           nominal_rates={"sensor-1": 10.0})
    assigner.assign(tuples)
    print(f"  source tuples : {len(tuples)}, SIC per tuple ≈ {tuples[0].sic:.3f} "
          f"(sum ≈ {sum(t.sic for t in tuples):.2f})")

    fragment.deliver(Batch("count-demo", tuples))
    output = fragment.process(now=2.0)
    result = output.results[0].tuples[0]
    qualifying = sum(1 for v in readings if v >= 50)
    print(f"  result tuple  : count of values >= 50 is {result.values['count']:.0f} "
          f"(expected {qualifying})")
    print(f"  result SIC    : {result.sic:.2f} — the full window's information "
          "content reaches the result because nothing was shed")


def trace_sic_after_shedding():
    print("\nSame window with half of the tuples shed:\n")
    graph = compile_query(COUNT_STATEMENT, query_id="count-shed", sources={"Src": ["sensor-1"]})
    fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
    readings = [30.0, 75.0, 52.0, 18.0, 90.0, 66.0, 41.0, 87.0, 12.0, 55.0]
    tuples = [
        Tuple(timestamp=0.05 + i * 0.1, sic=0.0, values={"v": v}, source_id="sensor-1")
        for i, v in enumerate(readings)
    ]
    assigner = SicAssigner("count-shed", num_sources=1, stw_seconds=1.0,
                           nominal_rates={"sensor-1": 10.0})
    assigner.assign(tuples)
    kept = tuples[::2]  # a shedder kept every other tuple
    fragment.deliver(Batch("count-shed", kept))
    output = fragment.process(now=2.0)
    result = output.results[0].tuples[0]
    print(f"  kept tuples   : {len(kept)} of {len(tuples)}")
    print(f"  result value  : {result.values['count']:.0f} (degraded answer)")
    print(f"  result SIC    : {result.sic:.2f} — the user sees that only about "
          "half of the source information contributed to this result")


def main():
    show_compiled_queries()
    trace_sic_through_a_query()
    trace_sic_after_shedding()


if __name__ == "__main__":
    main()
