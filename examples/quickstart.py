#!/usr/bin/env python3
"""Quickstart: fair load shedding on a single overloaded THEMIS node.

This example deploys a handful of Table-1 queries on one node whose capacity
is only half of the offered load, runs the BALANCE-SIC fair shedder and the
random baseline on identical input, and prints the per-query result SIC
values and Jain's Fairness Index for both.

Run with::

    python examples/quickstart.py
"""

from repro import LocalEngine, RandomShedder, SimulationConfig
from repro.workloads import (
    make_avg_query,
    make_count_query,
    make_cov_query,
    make_max_query,
    make_top5_query,
)


def build_queries(seed: int = 0):
    """A small mix of aggregate and complex queries from Table 1."""
    return [
        make_avg_query(query_id="avg", rate=120.0, dataset="gaussian", seed=seed),
        make_max_query(query_id="max", rate=120.0, dataset="mixed", seed=seed + 1),
        make_count_query(query_id="count", rate=120.0, dataset="uniform", seed=seed + 2),
        make_cov_query(query_id="cov", num_fragments=1, rate=120.0, seed=seed + 3),
        make_top5_query(
            query_id="top5", num_fragments=1, machines_per_fragment=3, rate=20.0,
            seed=seed + 4,
        ),
    ]


def run(shedder=None, label="BALANCE-SIC"):
    config = SimulationConfig(
        duration_seconds=20.0,
        warmup_seconds=5.0,
        stw_seconds=10.0,
        shedding_interval=0.25,
        capacity_fraction=0.5,   # the node can only process half the load
        seed=42,
    )
    engine = LocalEngine(config, shedder=shedder)
    engine.add_queries(build_queries())
    result = engine.run()

    print(f"--- {label} ---")
    for query_id, sic in sorted(result.per_query_sic.items()):
        print(f"  {query_id:<8} result SIC = {sic:.3f}")
    print(f"  mean SIC      = {result.mean_sic:.3f}")
    print(f"  Jain's index  = {result.jains_index:.3f}")
    print(f"  tuples shed   = {result.total_shed_tuples} "
          f"({result.shed_fraction:.0%} of input)")
    print()
    return result


def main():
    fair = run(shedder=None, label="BALANCE-SIC fair shedding")
    random_result = run(shedder=RandomShedder(seed=42), label="random shedding (baseline)")
    improvement = (fair.jains_index - random_result.jains_index) / random_result.jains_index
    print(f"BALANCE-SIC improves Jain's Fairness Index by {improvement:.1%} "
          "over random shedding on this deployment.")


if __name__ == "__main__":
    main()
