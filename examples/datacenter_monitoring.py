#!/usr/bin/env python3
"""Data-centre health monitoring: the complex workload under federation.

The paper's complex workload (Table 1) monitors the health of data-centre
servers: cluster-wide CPU averages, the top-5 machines with spare capacity,
and covariances between machines.  This example deploys a population of such
monitoring queries across six federated nodes, compares BALANCE-SIC with
random shedding on the exact same workload, and also checks how the measured
SIC relates to the accuracy of the TOP-5 answers (the §7.1 correlation).

Run with::

    python examples/datacenter_monitoring.py
"""

from repro.experiments.common import build_federation
from repro.experiments.fig07_sic_correlation_complex import top5_lists_per_window
from repro.federation.deployment import RandomPlacement
from repro.metrics.errors import normalized_kendall_distance
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.workloads import WorkloadSpec, generate_complex_workload, make_top5_query


def monitoring_config(**overrides):
    values = dict(
        duration_seconds=25.0,
        warmup_seconds=5.0,
        stw_seconds=10.0,
        shedding_interval=0.25,
        capacity_fraction=0.45,
        seed=11,
    )
    values.update(overrides)
    return SimulationConfig(**values)


def compare_shedders():
    """Run the same monitoring workload under both shedders."""
    spec = WorkloadSpec(
        num_queries=24,
        fragments_per_query=(1, 2, 3),
        kinds=("avg-all", "top5", "cov"),
        source_rate=12.0,
        sources_per_avg_all_fragment=3,
        machines_per_top5_fragment=2,
        seed=11,
    )
    print("Monitoring workload: 24 queries (AVG-all, TOP-5, COV), 6 nodes, "
          "45% capacity\n")
    results = {}
    for shedder in ("balance-sic", "random"):
        config = monitoring_config(shedder=shedder)
        system = build_federation(
            generate_complex_workload(spec),
            num_nodes=6,
            config=config,
            shedder_name=shedder,
            placement_strategy=RandomPlacement(seed=11),
            budget_mode="uniform",
        )
        results[shedder] = Simulator(system, config).run()

    print(f"{'shedder':<14} {'mean SIC':>9} {'std':>7} {'Jain':>7} {'shed':>6}")
    for shedder, result in results.items():
        print(
            f"{shedder:<14} {result.mean_sic:>9.3f} {result.std_sic:>7.3f} "
            f"{result.jains_index:>7.3f} {result.shed_fraction:>6.0%}"
        )
    fair, rand = results["balance-sic"], results["random"]
    gain = (fair.jains_index - rand.jains_index) / rand.jains_index
    print(f"\nBALANCE-SIC is {gain:.0%} fairer (Jain's index) than random shedding "
          "on this deployment.\n")


def sic_vs_top5_accuracy():
    """Show that the SIC value of a TOP-5 query predicts its ranking accuracy."""
    print("SIC vs TOP-5 ranking accuracy (Kendall distance to perfect results):")

    def builder():
        return [
            make_top5_query(
                query_id="dc-top5", num_fragments=1, machines_per_fragment=5,
                rate=20.0, dataset="planetlab", seed=11,
            )
        ]

    from repro.experiments.common import run_workload

    # Result payloads are retained (off by default) so the degraded and
    # perfect runs can be aligned window by window.
    perfect_cfg = monitoring_config(
        shedder="none", capacity_fraction=1e6, retain_result_values=True
    )
    perfect = run_workload(builder, num_nodes=1, config=perfect_cfg)
    perfect_lists = top5_lists_per_window(perfect.result_values["dc-top5"])

    print(f"  {'capacity':>9} {'SIC':>7} {'Kendall distance':>17}")
    for fraction in (0.25, 0.5, 0.75):
        degraded_cfg = monitoring_config(
            shedder="random", capacity_fraction=fraction, retain_result_values=True
        )
        degraded = run_workload(builder, num_nodes=1, config=degraded_cfg)
        degraded_lists = top5_lists_per_window(degraded.result_values["dc-top5"])
        common = sorted(set(perfect_lists) & set(degraded_lists))
        distance = (
            sum(
                normalized_kendall_distance(degraded_lists[t], perfect_lists[t])
                for t in common
            ) / len(common)
            if common
            else 1.0
        )
        print(f"  {fraction:>9.2f} {degraded.mean_sic:>7.3f} {distance:>17.3f}")
    print("\nHigher SIC -> rankings closer to the perfect answer, so users can "
          "interpret the SIC feedback THEMIS attaches to their results.")


def main():
    compare_shedders()
    sic_vs_top5_accuracy()


if __name__ == "__main__":
    main()
