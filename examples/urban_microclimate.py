#!/usr/bin/env python3
"""Urban micro-climate monitoring across a federated, multi-site deployment.

This example mirrors the paper's motivating scenario (Figure 1): three
autonomous sites — a cloud data centre in Paris, a governmental institute in
Rome and a research institute in Mexico — pool their nodes into a federated
stream processing system.  Environmental sensor streams are processed by
queries from different user groups (city planners, transport authorities,
meteorologists), each deployed as fragments spanning several sites.

The federation is permanently overloaded; the example shows how BALANCE-SIC
shedding keeps the processing quality of all users' queries balanced even
though the sites have very different loads, and prints a per-site and
per-query report.

Run with::

    python examples/urban_microclimate.py
"""

from repro.core import StwConfig, make_shedder
from repro.core.fairness import summarize_fairness
from repro.federation import (
    FederatedSystem,
    FspsNode,
    LatencyMatrix,
    Network,
)
from repro.workloads import make_avg_all_query, make_cov_query, make_top5_query

SITES = ("paris", "rome", "mexico")

# Wide-area round-trip structure of Figure 1: Europe-Europe links are fast,
# transatlantic links are slower.
LATENCIES = {
    ("paris", "rome"): 0.02,
    ("paris", "mexico"): 0.09,
    ("rome", "mexico"): 0.10,
}


def build_network() -> Network:
    matrix = LatencyMatrix(default_seconds=0.05)
    for (a, b), seconds in LATENCIES.items():
        matrix.set_latency(a, b, seconds)
    return Network(matrix)


def build_queries(seed: int = 7):
    """Queries issued by the three user groups of the scenario."""
    queries = []
    # City planners: city-wide average air temperature (fragments per site).
    queries.append(
        (
            make_avg_all_query(
                query_id="planning-avg-temperature",
                num_fragments=3,
                sources_per_fragment=4,
                rate=40.0,
                dataset="gaussian",
                seed=seed,
            ),
            "fragments spread over all three sites (tree)",
        )
    )
    # Transport authority: the monitoring stations with the worst air quality.
    queries.append(
        (
            make_top5_query(
                query_id="transport-top5-pollution",
                num_fragments=2,
                machines_per_fragment=3,
                rate=15.0,
                dataset="planetlab",
                seed=seed + 1,
            ),
            "chain across Paris and Rome",
        )
    )
    # Meteorological researchers: covariance between sensors in two cities.
    queries.append(
        (
            make_cov_query(
                query_id="research-cov-temperature",
                num_fragments=2,
                rate=60.0,
                dataset="mixed",
                seed=seed + 2,
            ),
            "chain across Rome and Mexico",
        )
    )
    # Citizens' association: local averages in Mexico only (single site).
    queries.append(
        (
            make_avg_all_query(
                query_id="citizens-local-average",
                num_fragments=1,
                sources_per_fragment=4,
                rate=40.0,
                dataset="exponential",
                seed=seed + 3,
            ),
            "single fragment hosted in Mexico",
        )
    )
    return queries


def main():
    stw = StwConfig(stw_seconds=10.0, slide_seconds=0.25)
    system = FederatedSystem(
        stw_config=stw, shedding_interval=0.25, network=build_network()
    )

    # Heterogeneous, autonomous sites: Paris is a large cloud deployment,
    # Rome and Mexico are smaller institutional clusters.  All are overloaded.
    budgets = {"paris": 45.0, "rome": 25.0, "mexico": 20.0}
    for site in SITES:
        system.add_node(
            FspsNode(
                node_id=site,
                shedder=make_shedder("balance-sic", seed=hash(site) % 1000),
                budget_per_interval=budgets[site],
                stw_config=stw,
                site=site,
            )
        )

    print("Deploying queries across the federation:")
    for query, description in build_queries():
        placement = {
            fragment_id: SITES[index % len(SITES)]
            for index, fragment_id in enumerate(query.fragment_order)
        }
        system.deploy_query(query.query_id, query.fragments, query.sources, placement)
        print(f"  {query.query_id:<30} {description}")
    print()

    print("Running 60 seconds of simulated overload ...")
    system.run(60.0)

    print("\nPer-query processing quality (result SIC over the last STW):")
    sic_values = system.mean_sic_per_query(skip_initial=40)
    for query_id, sic in sorted(sic_values.items()):
        print(f"  {query_id:<30} SIC = {sic:.3f}")

    summary = summarize_fairness(sic_values)
    print(f"\nJain's Fairness Index across user groups: {summary.jains_index:.3f}")
    print(f"Mean result SIC: {summary.mean:.3f} (std {summary.std:.3f})")

    print("\nPer-site shedding report:")
    for site in SITES:
        node = system.nodes[site]
        stats = node.stats
        print(
            f"  {site:<8} received {stats.received_tuples:>7} tuples, "
            f"shed {stats.shed_tuples:>7} ({stats.shed_fraction:.0%}), "
            f"overloaded in {stats.overloaded_ticks}/{stats.ticks} intervals"
        )


if __name__ == "__main__":
    main()
