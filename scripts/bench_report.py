#!/usr/bin/env python
"""Run the shedding micro-benchmarks and record ``BENCH_shedding.json``.

Usage::

    PYTHONPATH=src python scripts/bench_report.py [--output BENCH_shedding.json]
        [--quick] [--compare]

The report contains three sections:

* ``baseline`` — hard numbers measured on the seed (pre-optimisation) tree,
  checked in with the fast-path PR.  They are machine-specific, so they are
  advisory; the machine-independent comparison is ``reference_ms`` inside
  ``current``, which times the preserved reference implementations from
  :mod:`repro.core._reference` on the same machine as the fast path.
* ``current`` — this run's numbers for every kernel.
* ``speedup`` — fast-vs-reference ratios for the kernels with a reference.

``--compare`` loads an existing report and exits non-zero if the current fast
path is more than 2× slower than the recorded ``current`` numbers — a cheap
perf-regression gate for future PRs.  ``--quick`` skips the slow reference
run at 1000 queries (used by CI smoke runs).

The report also carries a ``soak`` section: tracked bounded memory across a
short fail/rejoin soak (see :mod:`repro.experiments.soak`).  ``--compare``
gates it too — the run must keep its exactly-once ledger closed, never
overflow a bounded ingress queue, hold bounded memory flat (±5% across
cycles) and stay under the recorded peak with the usual 2× headroom.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.perf.microbench import run_microbench  # noqa: E402

# Measured at the seed commit (fea8722) on the machine that produced the
# first report, before the heap-based fast path landed.  Advisory only —
# see the module docstring.  The generation/end-to-end entries were measured
# with the columnar-pipeline PR by timing the preserved seed per-tuple
# implementations on the recording machine.
SEED_BASELINE = {
    "commit": "fea8722 (seed, pre-optimisation)",
    "selection_q10_ms": 0.19,
    "selection_q100_ms": 65.15,
    "selection_q1000_ms": 4243.55,
    "estimator_ingest_100k_per_tuple_ms": 175.26,
    "generation_sic_200k_per_tuple_ms": 1176.4,
    "end_to_end_aggregate50_per_tuple_ms": 928.0,
}

REGRESSION_FACTOR = 2.0

#: Tracked bounded memory may drift at most this fraction between the first
#: post-warm-up soak sample and the last (the flat-memory acceptance bar).
SOAK_GROWTH_CEILING = 0.05

#: Fail/rejoin cycles in the report's soak probe — the acceptance minimum.
SOAK_PROBE_CYCLES = 20


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        revision = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        # An uncommitted tree measured numbers that HEAD alone cannot
        # reproduce — say so in the stamp.
        if status.stdout.strip():
            revision += "-dirty"
        return revision
    except Exception:
        return "unknown"


def build_report(quick: bool = False) -> dict:
    selection_queries = {10: True, 100: True, 1000: not quick}
    results = run_microbench(selection_queries=selection_queries)
    speedups = {}
    for label, entry in results["selection"].items():
        if label == "q10":
            # The Q=10 selection kernel runs in ~0.2 ms; its fast-vs-reference
            # ratio is scheduler noise, not signal, so it is reported in
            # `current` but excluded from the gated speedup ratios (a loaded
            # CI runner would otherwise fail --compare with no code change).
            continue
        if "speedup" in entry:
            speedups[f"selection_{label}"] = round(entry["speedup"], 2)
    speedups["estimator_ingest"] = round(results["estimator"]["speedup"], 2)
    speedups["generation_sic"] = round(results["generation"]["speedup"], 2)
    speedups["window_insert"] = round(results["window"]["speedup"], 2)
    speedups["end_to_end"] = round(results["end_to_end"]["speedup"], 2)
    # Columnar v2 (numpy vs list backend on identical workloads): watched by
    # --compare like every other machine-independent ratio.
    columnar_v2 = results["columnar_v2"]
    speedups["columnar_v2_window"] = round(columnar_v2["window"]["speedup"], 2)
    speedups["columnar_v2_aggregate"] = round(
        columnar_v2["aggregate"]["speedup"], 2
    )
    speedups["columnar_v2_end_to_end"] = round(
        columnar_v2["end_to_end"]["speedup"], 2
    )
    # Fused fragment execution (staged v2 / fused on the identical numpy
    # paper-scale scenario): watched by --compare like the other ratios.
    speedups["fused_end_to_end"] = round(
        results["fused"]["end_to_end"]["speedup"], 2
    )
    # Execution-driver ratio (lockstep / event, ~1.0): recorded so --compare
    # catches the discrete-event runtime blowing past its ≤10% overhead
    # budget in a later PR, like any other fast-path regression.
    speedups["runtime_event_vs_lockstep"] = round(
        results["runtime"]["lockstep_ms"] / results["runtime"]["event_ms"], 2
    )
    # Reliable-delivery ratio (off / on, ~1.0 on a loss-free network):
    # recorded so --compare catches the reliable channel's bookkeeping
    # blowing past its ≤10% overhead budget in a later PR.
    reliability = results["faults"]["reliability"]
    speedups["reliability_off_vs_on"] = round(
        reliability["off_ms"] / reliability["on_ms"], 2
    )
    # Exactly-once accounting ratio (off / on, ~1.0 on a fault-free run):
    # recorded so --compare catches the watermark-stamp + ledger-lane
    # bookkeeping blowing past its ≤10% overhead budget in a later PR.
    exactly_once = results["faults"]["exactly_once"]
    speedups["result_accounting_off_vs_on"] = round(
        exactly_once["off_ms"] / exactly_once["on_ms"], 2
    )
    # Sharded-driver ratio (event / inline on the multi-site WAN federation
    # scenario, ~1.0): both sides run in one process, so the ratio is the
    # machine-independent cost of per-site shards + the deterministic
    # boundary merge, and --compare catches it blowing up in a later PR.
    # The multiprocess speedup is recorded in the `sharded` section of
    # `current` (with `cpu_count` alongside) but deliberately NOT gated
    # here: parallel speedup depends on the machine's cores, and the
    # ≥2×@4-workers acceptance gate lives in benchmarks/test_bench_micro.py
    # behind an os.cpu_count() >= 4 guard.
    sharded = results["sharded"]
    speedups["sharded_event_vs_inline"] = round(
        sharded["event_ms"] / sharded["inline_ms"], 2
    )
    # Checkpoint/restore budget (build / roundtrip, ~1.0): the cost of
    # snapshotting + restoring a 10⁵-tuple window relative to building that
    # state through the columnar pipeline.  Recorded so --compare fails when
    # the migration state-transfer path regresses by more than 2×.
    speedups["migration_roundtrip_vs_build"] = round(
        results["migration"]["build_ms"] / results["migration"]["roundtrip_ms"],
        2,
    )
    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "schema": 1,
        "git_revision": git_revision(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "machine": platform.machine(),
        "baseline": SEED_BASELINE,
        "current": results,
        "speedup_vs_reference": speedups,
        "soak": run_soak_probe(),
    }


def run_soak_probe(cycles: int = SOAK_PROBE_CYCLES) -> dict:
    """Bounded-memory soak probe recorded as the report's ``soak`` section.

    Runs the small-scale soak scenario (fail/rejoin every cycle, coordinator
    failover every third) and samples :class:`repro.perf.memwatch.MemoryWatch`
    after each cycle.  The byte figures are estimates from fixed per-entry
    sizes, so they are machine-independent: two runs of the same tree produce
    the same numbers, which is what lets ``--compare`` gate on them.
    """
    from repro.experiments.soak import build_soak_federation, run_cycle
    from repro.experiments.testbeds import scaled_config
    from repro.perf.memwatch import MemoryWatch

    base = scaled_config("small", seed=0)
    system, runtime, node_factory = build_soak_federation(base, rate=80.0, seed=0)
    memwatch = MemoryWatch()
    runtime.run(base.warmup_seconds)
    memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)
    unaccounted = 0
    for cycle in range(cycles):
        row = run_cycle(system, runtime, node_factory, cycle)
        unaccounted += row["unaccounted_tuples"]
        memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)
    overflow = sum(
        node.stats.ingress_overflow_tuples for node in system.nodes.values()
    )
    paced = system.total_paced_tuples()
    # Skip the first two samples (the 6 s STW windows are still filling,
    # which reads as growth but is the bounded window reaching steady state)
    # and average six samples — two whole failover periods — at each end so
    # the crash/failover phase jitter cancels (same policy as the soak
    # experiment).
    summary = memwatch.summary(skip_initial=2, window=6)
    runtime.close()
    growth = summary["bounded_growth_fraction"]
    return {
        "cycles": cycles,
        "unaccounted_tuples": unaccounted,
        "ingress_overflow_tuples": overflow,
        "paced_tuples": paced,
        "first_bounded_bytes": summary["first_bounded_bytes"],
        "last_bounded_bytes": summary["last_bounded_bytes"],
        "peak_bounded_bytes": summary["peak_bounded_bytes"],
        "bounded_growth_fraction": (
            growth if growth is None else round(growth, 4)
        ),
    }


def compare(report_path: Path, current: dict) -> int:
    """Exit code 1 if the fast path regressed vs the recorded report.

    Compares the fast-vs-reference *speedup ratios*, which are
    machine-independent (both sides ran on the same machine in both
    reports), never the absolute milliseconds.  Also gates the ``soak``
    section: ledger closed, no ingress overflow, bounded memory flat and
    under the recorded peak with the usual 2× headroom.
    """
    recorded_report = json.loads(report_path.read_text())
    recorded = recorded_report.get("speedup_vs_reference", {})
    failures = []
    for label, new_ratio in current["speedup_vs_reference"].items():
        old_ratio = recorded.get(label)
        if old_ratio and new_ratio < old_ratio / REGRESSION_FACTOR:
            failures.append(
                f"{label}: speedup {new_ratio:.2f}x vs recorded "
                f"{old_ratio:.2f}x (fell by more than {REGRESSION_FACTOR}x)"
            )
    soak = current.get("soak", {})
    if soak:
        if soak["unaccounted_tuples"]:
            failures.append(
                f"soak: exactly-once ledger left "
                f"{soak['unaccounted_tuples']} tuples unaccounted"
            )
        if soak["ingress_overflow_tuples"]:
            failures.append(
                f"soak: bounded ingress overflowed "
                f"{soak['ingress_overflow_tuples']} tuples (pacing must "
                f"engage before the hard cap)"
            )
        growth = soak["bounded_growth_fraction"]
        if growth is not None and abs(growth) > SOAK_GROWTH_CEILING:
            failures.append(
                f"soak: tracked bounded memory drifted {growth * 100:.1f}% "
                f"across {soak['cycles']} fail/rejoin cycles (ceiling "
                f"±{SOAK_GROWTH_CEILING * 100:.0f}%)"
            )
        recorded_peak = recorded_report.get("soak", {}).get("peak_bounded_bytes")
        if (
            recorded_peak
            and soak["peak_bounded_bytes"] > recorded_peak * REGRESSION_FACTOR
        ):
            failures.append(
                f"soak: peak tracked memory {soak['peak_bounded_bytes']} B "
                f"vs recorded {recorded_peak} B (grew by more than "
                f"{REGRESSION_FACTOR}x)"
            )
    if failures:
        print("PERF REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("no perf regression vs", report_path)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_shedding.json",
        help="where to write the report (default: repo-root BENCH_shedding.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the slow reference run at 1000 queries",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare against the existing report instead of overwriting it",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    print(json.dumps(report["speedup_vs_reference"], indent=2))
    if args.compare:
        if not args.output.exists():
            print(f"no recorded report at {args.output}", file=sys.stderr)
            return 2
        return compare(args.output, report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
