"""Benchmark regenerating the §7.5 comparison against FIT [34] and Zhao [44]."""

from repro.experiments import related_work_comparison as related


def test_related_work_comparison(bench_experiment):
    result = bench_experiment(related.run, scale="small")
    by_key = {(row["setup"], row["approach"]): row for row in result.rows}
    fit = by_key[("simple", "FIT [34]")]
    zhao = by_key[("simple", "Zhao [44]")]
    themis = by_key[("simple", "BALANCE-SIC")]
    # FIT starves most queries; the fair approaches do not.
    assert fit["jains_index"] < zhao["jains_index"]
    assert fit["starved"] > 0
    assert themis["jains_index"] > 0.9
    assert ("complex", "BALANCE-SIC") in by_key
