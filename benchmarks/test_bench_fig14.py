"""Benchmark regenerating Figure 14 (burstiness and wide-area latencies)."""

from repro.experiments import fig14_burstiness_wan as fig14


def test_fig14_burstiness_wan(bench_experiment):
    result = bench_experiment(
        fig14.run, scale="small", query_counts=(6,), num_nodes=3
    )
    means = [row["mean_sic"] for row in result.rows]
    assert len(means) == 4  # LAN / FSPS x bursty / not
    # The paper's claim: mean SIC is essentially unchanged across set-ups.
    assert max(means) - min(means) < 0.25
    assert all(row["jains_index"] > 0.75 for row in result.rows)
