"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates (a tiny version of) one figure or table of the
paper and attaches the resulting rows to the pytest-benchmark record via
``benchmark.extra_info`` so the numbers can be inspected in the benchmark
report.  Benchmarks run the experiment exactly once (``pedantic`` with one
round) because a single experiment already aggregates many simulation runs.
"""

import sys
from pathlib import Path

import pytest

# Allow running the benchmarks without installing the package first.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_rows(benchmark, result):
    """Record experiment rows and notes on the benchmark for the report."""
    benchmark.extra_info["experiment"] = result.name
    benchmark.extra_info["rows"] = result.rows
    if result.notes:
        benchmark.extra_info["notes"] = result.notes
    return result


@pytest.fixture
def bench_experiment(benchmark):
    """Fixture returning a runner that times an experiment and keeps its rows."""

    def runner(func, *args, **kwargs):
        result = run_once(benchmark, func, *args, **kwargs)
        return attach_rows(benchmark, result)

    return runner
