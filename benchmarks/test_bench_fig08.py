"""Benchmark regenerating Figure 8 (single-node fairness vs number of queries)."""

from repro.experiments import fig08_single_node_fairness as fig08


def test_fig08_single_node_fairness(bench_experiment):
    result = bench_experiment(
        fig08.run, scale="small", query_counts=(4, 8, 12), source_rate=8.0
    )
    means = [row["mean_sic"] for row in result.rows]
    jains = [row["jains_index"] for row in result.rows]
    # Load grows -> mean SIC falls; fairness stays high throughout.
    assert means[0] > means[-1]
    assert min(jains) > 0.85
