"""Benchmark regenerating Figure 11 (ratio of multi-fragment queries)."""

from repro.experiments import fig11_multifragment_ratio as fig11


def test_fig11_multifragment_ratio(bench_experiment):
    result = bench_experiment(
        fig11.run,
        scale="small",
        ratios=(0.2, 1.0),
        num_nodes=3,
        total_fragments=30,
    )
    jains = [row["jains_index"] for row in result.rows]
    assert len(jains) == 2
    assert min(jains) > 0.7
    # More multi-fragment queries -> at least as fair.
    assert jains[-1] >= jains[0] - 0.05
