"""Benchmark regenerating Figure 13 (scalability with the number of queries)."""

from repro.experiments import fig13_scalability_queries as fig13


def test_fig13_scalability_queries(bench_experiment):
    result = bench_experiment(
        fig13.run, scale="small", query_counts=(8, 20), num_nodes=3
    )
    rows = result.rows
    # More queries on fixed capacity -> mean SIC drops; shedding stays fair.
    assert rows[-1]["mean_sic"] <= rows[0]["mean_sic"] + 0.02
    assert all(row["jains_index"] > 0.8 for row in rows)
