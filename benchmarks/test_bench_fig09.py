"""Benchmark regenerating Figure 9 (shedding interval sweep)."""

from repro.experiments import fig09_shedding_interval as fig09


def test_fig09_shedding_interval(bench_experiment):
    result = bench_experiment(
        fig09.run,
        scale="small",
        intervals=(0.05, 0.25),
        num_queries=8,
        num_nodes=2,
    )
    jains = [row["jains_index"] for row in result.rows]
    means = [row["mean_sic"] for row in result.rows]
    # Fairness is insensitive to the shedding interval.
    assert min(jains) > 0.85
    assert max(means) - min(means) < 0.2
