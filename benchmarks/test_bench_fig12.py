"""Benchmark regenerating Figure 12 (scalability with the number of nodes)."""

from repro.experiments import fig12_scalability_nodes as fig12


def test_fig12_scalability_nodes(bench_experiment):
    result = bench_experiment(
        fig12.run, scale="small", node_counts=(2, 4), num_queries=12
    )
    rows = result.rows
    # More nodes -> more capacity -> mean SIC does not decrease; fairness holds.
    assert rows[-1]["mean_sic"] >= rows[0]["mean_sic"] - 0.05
    assert all(row["jains_index"] > 0.8 for row in rows)
