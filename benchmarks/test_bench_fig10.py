"""Benchmark regenerating Figure 10 (BALANCE-SIC vs random across fragment counts)."""

from repro.experiments import fig10_multinode_comparison as fig10


def test_fig10_multinode_comparison(bench_experiment):
    result = bench_experiment(
        fig10.run,
        scale="small",
        cases=(2, "mixed"),
        num_nodes=4,
        total_fragments=48,
    )
    by_key = {(str(r["fragments"]), r["shedder"]): r for r in result.rows}
    for case in ("2", "mixed"):
        fair = by_key[(case, "balance-sic")]
        rand = by_key[(case, "random")]
        # The paper's headline: the fair shedder beats random on Jain's index
        # and does not lose on mean SIC.
        assert fair["jains_index"] >= rand["jains_index"] - 0.02
        assert fair["mean_sic"] >= rand["mean_sic"] - 0.05
