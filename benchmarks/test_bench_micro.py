"""Micro-benchmarks for the shedding + columnar fast paths (perf harness).

Unlike the ``test_bench_fig*`` suites, which regenerate whole experiments,
these benchmarks time individual hot kernels — BALANCE-SIC selection,
source-rate-estimator ingest, the node tick loop, columnar source
generation + SIC assignment, columnar window bucketing and the end-to-end
simulation macro-benchmark — and additionally assert the fast path's speedup
over the pre-optimisation reference implementations kept in
:mod:`repro.core._reference` and :mod:`repro.streaming._reference`.  The
asserted floors sit well below the observed speedups (see
``BENCH_shedding.json``) so the suite stays stable on slower machines; set
``REPRO_SKIP_PERF_ASSERT=1`` to skip the floor assertions entirely on
throttled runners.

Run with ``--benchmark-disable`` for a fast functional smoke of the perf code
paths; run ``scripts/bench_report.py`` to refresh ``BENCH_shedding.json``.
"""

import os

import pytest

from repro.perf.microbench import (
    MIGRATION_WINDOW_TUPLES,
    SELECTION_QUERY_COUNTS,
    SHARDED_NODES,
    SHARDED_WORKERS,
    run_end_to_end,
    time_aggregate_v2,
    time_end_to_end,
    time_end_to_end_fused,
    time_end_to_end_v2,
    time_estimator_ingest,
    time_generation_sic,
    time_migration,
    time_node_ticks,
    time_reliability,
    time_result_accounting,
    time_runtime,
    time_selection,
    time_sharded,
    time_window_insert,
    time_window_insert_v2,
)

SELECTION_SPEEDUP_FLOOR = 5.0
ESTIMATOR_SPEEDUP_FLOOR = 10.0
# Columnar pipeline floors (observed: generation ~9x, window ~11x, end-to-end
# ~1.8x on the recording machine — see BENCH_shedding.json).  The end-to-end
# floor is deliberately the loosest: its two ~1 s macro-runs have the least
# headroom of the suite, so both sides are measured best-of-2.
GENERATION_SPEEDUP_FLOOR = 5.0
WINDOW_SPEEDUP_FLOOR = 4.0
END_TO_END_SPEEDUP_FLOOR = 1.25
# Columnar v2 floors: numpy backend vs the list-backed fast path on identical
# paper-scale workloads (observed: window ~4-5x, aggregation ~5-7x, v2
# end-to-end macro ~2-2.5x on the recording machine — see the columnar_v2
# section of BENCH_shedding.json).
WINDOW_V2_SPEEDUP_FLOOR = 3.0
AGGREGATE_V2_SPEEDUP_FLOOR = 3.0
END_TO_END_V2_SPEEDUP_FLOOR = 1.3
# Fused fragment execution: the plan compiler's single-pass prefix vs staged
# v2 dispatch on the identical paper-scale macro scenario (observed ~1.55-1.6x
# on the recording machine — see the `fused` section of BENCH_shedding.json).
# The 1.5x floor is the PR's acceptance criterion; both sides are best-of-3
# because the margin over the floor is the thinnest of the suite.
FUSED_END_TO_END_SPEEDUP_FLOOR = 1.5
# The discrete-event runtime must stay within 10% of the lockstep loop end
# to end (ISSUE 3 acceptance criterion; observed ~5-7% on the recording
# machine — see the `runtime` section of BENCH_shedding.json).
RUNTIME_OVERHEAD_CEILING = 0.10
# Reliable delivery on a loss-free network must stay within 10% of the plain
# best-effort transport end to end (robustness PR acceptance criterion; the
# two runs are bit-exact result-identical, so the ratio is the pure cost of
# sequence numbers, acks and retransmission timers — see the `faults` section
# of BENCH_shedding.json).
RELIABILITY_OVERHEAD_CEILING = 0.10
# Exactly-once result accounting must stay within 10% of an unaccounted run
# end to end (robustness PR acceptance criterion; without crashes the ledger
# only ever advances watermarks, the two runs are bit-exact result-identical,
# and the ratio is the pure cost of stamping batches and updating ledger
# lanes — see the `faults` section of BENCH_shedding.json).
RESULT_ACCOUNTING_OVERHEAD_CEILING = 0.10
# Checkpoint + restore of a 10⁵-tuple window must stay within this factor of
# *building* the same window state through the columnar pipeline (ISSUE 4;
# observed ~1.0× on the recording machine — the serialised round-trip costs
# about as much as one pipeline pass over the state it moves — see the
# `migration` section of BENCH_shedding.json).
MIGRATION_ROUNDTRIP_CEILING = 4.0
# Sharded multi-core federation (PR 9 acceptance criteria, `sharded` section
# of BENCH_shedding.json).  Inline shards pay the per-site scheduler + merge
# bookkeeping in a single process (observed ~15-20% on the recording
# machine); the ceiling leaves headroom for scheduler noise.  The
# multiprocess floor is the ≥2×-at-4-workers target — parallel speedup
# scales with available cores, so that gate only arms on ≥4-CPU machines.
SHARDED_INLINE_OVERHEAD_CEILING = 0.35
SHARDED_MULTIPROCESS_SPEEDUP_FLOOR = 2.0

# Wall-clock ratio assertions are meaningless on heavily throttled shared
# runners; REPRO_SKIP_PERF_ASSERT=1 keeps the kernels running (so the code
# paths stay covered) but skips the floor checks.
skip_perf_asserts = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="perf floor assertions disabled via REPRO_SKIP_PERF_ASSERT",
)


def best_of(n, func, **kwargs):
    """Best-of-``n`` timing: robust against scheduler noise in assertions."""
    return min(func(**kwargs) for _ in range(n))


class TestSelectionBenchmarks:
    @pytest.mark.parametrize("num_queries", SELECTION_QUERY_COUNTS)
    def test_balance_sic_selection(self, benchmark, num_queries):
        benchmark.extra_info["queries"] = num_queries
        seconds = benchmark.pedantic(
            time_selection,
            kwargs={"num_queries": num_queries},
            rounds=1,
            iterations=1,
        )
        assert seconds > 0

    @skip_perf_asserts
    def test_selection_speedup_vs_reference_q1000(self):
        fast = best_of(3, time_selection, num_queries=1000)
        reference = time_selection(num_queries=1000, use_reference=True)
        speedup = reference / fast
        assert speedup >= SELECTION_SPEEDUP_FLOOR, (
            f"BALANCE-SIC fast path regressed: only {speedup:.1f}x over the "
            f"reference at 1000 queries (floor {SELECTION_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.1f} ms reference={reference * 1e3:.1f} ms"
        )

    @skip_perf_asserts
    def test_selection_speedup_vs_reference_q100(self):
        # At 100 queries the O(I × Q) rescan term is small, so the asserted
        # floor is looser than the 5× criterion at 1000 queries.
        fast = best_of(3, time_selection, num_queries=100)
        reference = time_selection(num_queries=100, use_reference=True)
        assert reference / fast >= 2.0


class TestEstimatorBenchmarks:
    def test_estimator_ingest(self, benchmark):
        seconds = benchmark.pedantic(
            time_estimator_ingest, rounds=1, iterations=1
        )
        assert seconds > 0

    @skip_perf_asserts
    def test_estimator_ingest_speedup_vs_reference(self):
        fast = best_of(3, time_estimator_ingest)
        reference = time_estimator_ingest(use_reference=True)
        speedup = reference / fast
        assert speedup >= ESTIMATOR_SPEEDUP_FLOOR, (
            f"estimator ingest regressed: only {speedup:.1f}x over the "
            f"per-tuple reference (floor {ESTIMATOR_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.2f} ms reference={reference * 1e3:.2f} ms"
        )


class TestNodeBenchmarks:
    def test_node_tick_throughput(self, benchmark):
        seconds = benchmark.pedantic(time_node_ticks, rounds=1, iterations=1)
        benchmark.extra_info["ticks_per_second"] = 50 / seconds
        assert seconds > 0


class TestColumnarBenchmarks:
    """Columnar tick pipeline vs the seed per-tuple implementations."""

    def test_generation_sic(self, benchmark):
        seconds = benchmark.pedantic(time_generation_sic, rounds=1, iterations=1)
        assert seconds > 0

    @skip_perf_asserts
    def test_generation_sic_speedup_vs_reference(self):
        fast = best_of(3, time_generation_sic)
        reference = time_generation_sic(use_reference=True)
        speedup = reference / fast
        assert speedup >= GENERATION_SPEEDUP_FLOOR, (
            f"columnar generation + SIC assignment regressed: only "
            f"{speedup:.1f}x over the seed per-tuple reference (floor "
            f"{GENERATION_SPEEDUP_FLOOR}x); fast={fast * 1e3:.1f} ms "
            f"reference={reference * 1e3:.1f} ms"
        )

    def test_window_insert(self, benchmark):
        seconds = benchmark.pedantic(time_window_insert, rounds=1, iterations=1)
        assert seconds > 0

    @skip_perf_asserts
    def test_window_insert_speedup_vs_reference(self):
        fast = best_of(3, time_window_insert)
        reference = time_window_insert(use_reference=True)
        speedup = reference / fast
        assert speedup >= WINDOW_SPEEDUP_FLOOR, (
            f"columnar window bucketing regressed: only {speedup:.1f}x over "
            f"the per-tuple reference window (floor {WINDOW_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.1f} ms reference={reference * 1e3:.1f} ms"
        )


class TestColumnarV2Benchmarks:
    """NumPy-backed ColumnBlock v2 kernels vs the list-backed fast path.

    Both sides run the identical code on the identical workload — only the
    column storage differs — and are bit-exact result-identical, so the
    ratios are pure representation speedups.
    """

    def test_window_insert_v2(self, benchmark):
        seconds = benchmark.pedantic(
            time_window_insert_v2, rounds=1, iterations=1
        )
        assert seconds > 0

    def test_aggregate_v2(self, benchmark):
        seconds = benchmark.pedantic(time_aggregate_v2, rounds=1, iterations=1)
        assert seconds > 0

    @skip_perf_asserts
    def test_window_v2_speedup_vs_list_backend(self):
        numpy_s = best_of(3, time_window_insert_v2, backend="numpy")
        list_s = best_of(3, time_window_insert_v2, backend="list")
        speedup = list_s / numpy_s
        assert speedup >= WINDOW_V2_SPEEDUP_FLOOR, (
            f"columnar v2 window bucketing regressed: only {speedup:.1f}x "
            f"over the list backend (floor {WINDOW_V2_SPEEDUP_FLOOR}x); "
            f"numpy={numpy_s * 1e3:.1f} ms list={list_s * 1e3:.1f} ms"
        )

    @skip_perf_asserts
    def test_aggregate_v2_speedup_vs_list_backend(self):
        numpy_s = best_of(3, time_aggregate_v2, backend="numpy")
        list_s = best_of(3, time_aggregate_v2, backend="list")
        speedup = list_s / numpy_s
        assert speedup >= AGGREGATE_V2_SPEEDUP_FLOOR, (
            f"columnar v2 aggregation regressed: only {speedup:.1f}x over "
            f"the list backend (floor {AGGREGATE_V2_SPEEDUP_FLOOR}x); "
            f"numpy={numpy_s * 1e3:.1f} ms list={list_s * 1e3:.1f} ms"
        )

    @skip_perf_asserts
    def test_end_to_end_v2_speedup_vs_list_backend(self):
        numpy_s = best_of(2, time_end_to_end_v2, backend="numpy")
        list_s = best_of(2, time_end_to_end_v2, backend="list")
        speedup = list_s / numpy_s
        assert speedup >= END_TO_END_V2_SPEEDUP_FLOOR, (
            f"columnar v2 end-to-end macro regressed: only {speedup:.2f}x "
            f"over the list backend (floor {END_TO_END_V2_SPEEDUP_FLOOR}x); "
            f"numpy={numpy_s * 1e3:.0f} ms list={list_s * 1e3:.0f} ms"
        )

    def test_backend_result_identical(self):
        """Same seeds -> numpy- and list-backed runs reproduce each other
        exactly (scaled-down overload scenario, both backends forced)."""
        _, numpy_run = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            columnar_backend="numpy",
        )
        _, list_run = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            columnar_backend="list",
        )
        assert numpy_run.per_query_sic == list_run.per_query_sic
        assert numpy_run.result_values == list_run.result_values


class TestFusedBenchmarks:
    """Fused fragment execution vs staged v2 dispatch (identical paper-scale
    scenario on the numpy backend; results are bit-exact identical, so the
    ratio is pure per-tick dispatch cost removed by the plan compiler)."""

    def test_fused_end_to_end(self, benchmark):
        seconds = benchmark.pedantic(
            time_end_to_end_fused, rounds=1, iterations=1
        )
        benchmark.extra_info["scenario"] = "aggregate x12 @ 2000 t/s, fused"
        assert seconds > 0

    @skip_perf_asserts
    def test_fused_speedup_vs_staged(self):
        fused = best_of(3, time_end_to_end_fused, fusion="on")
        staged = best_of(3, time_end_to_end_fused, fusion="off")
        speedup = staged / fused
        assert speedup >= FUSED_END_TO_END_SPEEDUP_FLOOR, (
            f"fused fragment execution regressed: only {speedup:.2f}x over "
            f"staged v2 (floor {FUSED_END_TO_END_SPEEDUP_FLOOR}x); "
            f"fused={fused * 1e3:.0f} ms staged={staged * 1e3:.0f} ms"
        )

    def test_fused_result_identical(self):
        """Same seeds -> the fused run reproduces the staged run exactly
        (scaled-down overload scenario, numpy backend both sides)."""
        _, fused = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            columnar_backend="numpy", fusion="on",
        )
        _, staged = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            columnar_backend="numpy", fusion="off",
        )
        assert fused.per_query_sic == staged.per_query_sic
        assert fused.result_values == staged.result_values


class TestMigrationBenchmarks:
    """Checkpoint/restore state-transfer cost (the fragment-migration and
    periodic-checkpoint hot path introduced with the repro.state layer)."""

    def test_migration_roundtrip(self, benchmark):
        seconds = benchmark.pedantic(time_migration, rounds=1, iterations=1)
        benchmark.extra_info["tuples"] = MIGRATION_WINDOW_TUPLES
        assert seconds > 0

    @skip_perf_asserts
    def test_migration_roundtrip_within_budget(self):
        build = best_of(3, time_migration, phase="build")
        roundtrip = best_of(3, time_migration, phase="roundtrip")
        ratio = roundtrip / build
        assert ratio <= MIGRATION_ROUNDTRIP_CEILING, (
            f"checkpoint+restore of a {MIGRATION_WINDOW_TUPLES}-tuple window "
            f"regressed: {ratio:.2f}x the columnar build cost (budget "
            f"{MIGRATION_ROUNDTRIP_CEILING}x); build={build * 1e3:.1f} ms "
            f"roundtrip={roundtrip * 1e3:.1f} ms"
        )


class TestEndToEndBenchmarks:
    """End-to-end simulation macro-benchmark (aggregate workload, 50 queries,
    overload factor 2) — the headline tick-loop comparison."""

    def test_end_to_end_columnar(self, benchmark):
        seconds = benchmark.pedantic(time_end_to_end, rounds=1, iterations=1)
        benchmark.extra_info["scenario"] = "aggregate x50, overload 2"
        assert seconds > 0

    @skip_perf_asserts
    def test_end_to_end_speedup_vs_reference(self):
        fast = best_of(2, time_end_to_end)
        reference = best_of(2, time_end_to_end, use_reference=True)
        speedup = reference / fast
        assert speedup >= END_TO_END_SPEEDUP_FLOOR, (
            f"end-to-end tick loop regressed: columnar only {speedup:.2f}x "
            f"over the per-tuple pipeline (floor {END_TO_END_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.0f} ms reference={reference * 1e3:.0f} ms"
        )

    def test_end_to_end_columnar_result_identical(self):
        """Same seeds -> the columnar run reproduces the per-tuple run's
        per-query SIC values exactly (scaled-down scenario)."""
        _, columnar = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0, columnar=True
        )
        _, reference = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0, columnar=False
        )
        assert columnar.per_query_sic == reference.per_query_sic
        assert columnar.result_values == reference.result_values


class TestRuntimeBenchmarks:
    """Discrete-event runtime vs the lockstep tick loop (identical scenario,
    identical results — the timing difference is pure scheduling overhead)."""

    def test_event_runtime(self, benchmark):
        seconds = benchmark.pedantic(time_runtime, rounds=1, iterations=1)
        benchmark.extra_info["scenario"] = "aggregate x50, overload 2, event loop"
        assert seconds > 0

    @skip_perf_asserts
    def test_event_runtime_overhead_within_budget(self):
        event = best_of(2, time_runtime)
        lockstep = best_of(2, time_runtime, use_lockstep=True)
        overhead = event / lockstep - 1.0
        assert overhead <= RUNTIME_OVERHEAD_CEILING, (
            f"event runtime overhead {overhead * 100:.1f}% exceeds the "
            f"{RUNTIME_OVERHEAD_CEILING * 100:.0f}% budget vs lockstep; "
            f"event={event * 1e3:.0f} ms lockstep={lockstep * 1e3:.0f} ms"
        )

    def test_event_runtime_result_identical(self):
        """Same seeds -> the event-driven run reproduces the lockstep run
        exactly (scaled-down scenario)."""
        _, event = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0, runtime="event"
        )
        _, lockstep = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0, runtime="lockstep"
        )
        assert event.per_query_sic == lockstep.per_query_sic
        assert event.result_values == lockstep.result_values


class TestReliabilityBenchmarks:
    """Reliable delivery vs the best-effort transport (identical loss-free
    scenario, identical results — the timing difference is pure transport
    bookkeeping: sequence numbers, acks, retransmission timers)."""

    def test_reliable_end_to_end(self, benchmark):
        seconds = benchmark.pedantic(time_reliability, rounds=1, iterations=1)
        benchmark.extra_info["scenario"] = "aggregate x50, overload 2, reliable"
        assert seconds > 0

    @skip_perf_asserts
    def test_reliability_overhead_within_budget(self):
        off = best_of(2, time_reliability, reliable=False)
        on = best_of(2, time_reliability, reliable=True)
        overhead = on / off - 1.0
        assert overhead <= RELIABILITY_OVERHEAD_CEILING, (
            f"reliable delivery overhead {overhead * 100:.1f}% exceeds the "
            f"{RELIABILITY_OVERHEAD_CEILING * 100:.0f}% budget on a loss-free "
            f"network; on={on * 1e3:.0f} ms off={off * 1e3:.0f} ms"
        )

    def test_reliable_result_identical(self):
        """Same seeds -> the reliable run reproduces the best-effort run
        exactly on a loss-free network (scaled-down scenario)."""
        _, reliable = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            reliable_delivery=True,
        )
        _, best_effort = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            reliable_delivery=False,
        )
        assert reliable.per_query_sic == best_effort.per_query_sic
        assert reliable.result_values == best_effort.result_values


class TestResultAccountingBenchmarks:
    """Exactly-once result accounting vs an unaccounted run (identical
    fault-free scenario, identical results — the timing difference is pure
    bookkeeping: watermark stamps on emitted batches plus coordinator ledger
    lane updates)."""

    def test_accounted_end_to_end(self, benchmark):
        seconds = benchmark.pedantic(
            time_result_accounting, rounds=1, iterations=1
        )
        benchmark.extra_info["scenario"] = "aggregate x50, overload 2, exactly-once"
        assert seconds > 0

    @skip_perf_asserts
    def test_result_accounting_overhead_within_budget(self):
        off = best_of(2, time_result_accounting, accounting=False)
        on = best_of(2, time_result_accounting, accounting=True)
        overhead = on / off - 1.0
        assert overhead <= RESULT_ACCOUNTING_OVERHEAD_CEILING, (
            f"exactly-once accounting overhead {overhead * 100:.1f}% exceeds "
            f"the {RESULT_ACCOUNTING_OVERHEAD_CEILING * 100:.0f}% budget on a "
            f"fault-free run; on={on * 1e3:.0f} ms off={off * 1e3:.0f} ms"
        )

    def test_accounted_result_identical(self):
        """Same seeds -> the accounted run reproduces the unaccounted run
        exactly on a fault-free run, and the ledger closes with zero
        unaccounted tuples (scaled-down scenario)."""
        _, accounted = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            result_accounting=True,
        )
        _, plain = run_end_to_end(
            num_queries=10, rate=200.0, duration_seconds=3.0,
            result_accounting=False,
        )
        assert accounted.per_query_sic == plain.per_query_sic
        assert accounted.result_values == plain.result_values
        assert accounted.result_accounting["enabled"] is True
        assert accounted.result_accounting["unaccounted_tuples"] == 0
        assert plain.result_accounting["enabled"] is False


class TestShardedBenchmarks:
    """Per-site shards vs the single-heap event driver on the multi-site WAN
    federation macro-scenario (bit-exact identical results — asserted by the
    differential suite in tests/integration/test_sharded_runtime.py and
    re-checked on fingerprints here — so the timing difference is the
    execution driver alone)."""

    def test_sharded_inline(self, benchmark):
        seconds = benchmark.pedantic(
            lambda: time_sharded("inline")[0], rounds=1, iterations=1
        )
        benchmark.extra_info["scenario"] = (
            f"federation x{SHARDED_NODES} sites, WAN 50 ms, "
            f"{SHARDED_WORKERS} inline shards"
        )
        assert seconds > 0

    @skip_perf_asserts
    def test_inline_merge_overhead_within_budget(self):
        event = min(time_sharded("event")[0] for _ in range(2))
        inline = min(time_sharded("inline")[0] for _ in range(2))
        overhead = inline / event - 1.0
        assert overhead <= SHARDED_INLINE_OVERHEAD_CEILING, (
            f"inline shard overhead {overhead * 100:.1f}% exceeds the "
            f"{SHARDED_INLINE_OVERHEAD_CEILING * 100:.0f}% budget vs the "
            f"single-heap driver; event={event * 1e3:.0f} ms "
            f"inline={inline * 1e3:.0f} ms"
        )

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="worker pool requires os.fork"
    )
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4,
        reason="parallel speedup gate needs >= 4 CPUs "
        f"(os.cpu_count()={os.cpu_count()})",
    )
    @skip_perf_asserts
    def test_multiprocess_speedup_at_4_workers(self):
        event = min(
            time_sharded("event", workers=SHARDED_WORKERS)[0]
            for _ in range(2)
        )
        multiprocess = min(
            time_sharded("multiprocess", workers=SHARDED_WORKERS)[0]
            for _ in range(2)
        )
        speedup = event / multiprocess
        assert speedup >= SHARDED_MULTIPROCESS_SPEEDUP_FLOOR, (
            f"multiprocess speedup {speedup:.2f}x at {SHARDED_WORKERS} "
            f"workers is below the {SHARDED_MULTIPROCESS_SPEEDUP_FLOOR}x "
            f"floor; event={event * 1e3:.0f} ms "
            f"multiprocess={multiprocess * 1e3:.0f} ms "
            f"(cpus={os.cpu_count()})"
        )

    def test_sharded_result_identical(self):
        """Same seeds -> every driver computes the same run (scaled-down
        scenario; the fingerprint is per-query SIC + message accounting)."""
        kwargs = dict(
            num_nodes=4, num_queries=6, rate=40.0, duration_seconds=2.0
        )
        _, event = time_sharded("event", **kwargs)
        _, inline = time_sharded("inline", **kwargs)
        assert inline == event
        if hasattr(os, "fork"):
            _, multiprocess = time_sharded(
                "multiprocess", workers=2, **kwargs
            )
            assert multiprocess == event
