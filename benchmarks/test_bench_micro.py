"""Micro-benchmarks for the shedding fast path (perf-regression harness).

Unlike the ``test_bench_fig*`` suites, which regenerate whole experiments,
these benchmarks time individual hot kernels — BALANCE-SIC selection,
source-rate-estimator ingest and the node tick loop — and additionally assert
the fast path's speedup over the pre-optimisation reference implementations
kept in :mod:`repro.core._reference`.  The asserted floors (5× selection at
1000 queries, 10× estimator ingest) sit below the observed speedups (~13×
and ~15-25× across runs, see ``BENCH_shedding.json``) so the suite stays
stable on slower machines; set ``REPRO_SKIP_PERF_ASSERT=1`` to skip the
floor assertions entirely on throttled runners.

Run with ``--benchmark-disable`` for a fast functional smoke of the perf code
paths; run ``scripts/bench_report.py`` to refresh ``BENCH_shedding.json``.
"""

import os

import pytest

from repro.perf.microbench import (
    SELECTION_QUERY_COUNTS,
    time_estimator_ingest,
    time_node_ticks,
    time_selection,
)

SELECTION_SPEEDUP_FLOOR = 5.0
ESTIMATOR_SPEEDUP_FLOOR = 10.0

# Wall-clock ratio assertions are meaningless on heavily throttled shared
# runners; REPRO_SKIP_PERF_ASSERT=1 keeps the kernels running (so the code
# paths stay covered) but skips the floor checks.
skip_perf_asserts = pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_ASSERT") == "1",
    reason="perf floor assertions disabled via REPRO_SKIP_PERF_ASSERT",
)


def best_of(n, func, **kwargs):
    """Best-of-``n`` timing: robust against scheduler noise in assertions."""
    return min(func(**kwargs) for _ in range(n))


class TestSelectionBenchmarks:
    @pytest.mark.parametrize("num_queries", SELECTION_QUERY_COUNTS)
    def test_balance_sic_selection(self, benchmark, num_queries):
        benchmark.extra_info["queries"] = num_queries
        seconds = benchmark.pedantic(
            time_selection,
            kwargs={"num_queries": num_queries},
            rounds=1,
            iterations=1,
        )
        assert seconds > 0

    @skip_perf_asserts
    def test_selection_speedup_vs_reference_q1000(self):
        fast = best_of(3, time_selection, num_queries=1000)
        reference = time_selection(num_queries=1000, use_reference=True)
        speedup = reference / fast
        assert speedup >= SELECTION_SPEEDUP_FLOOR, (
            f"BALANCE-SIC fast path regressed: only {speedup:.1f}x over the "
            f"reference at 1000 queries (floor {SELECTION_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.1f} ms reference={reference * 1e3:.1f} ms"
        )

    @skip_perf_asserts
    def test_selection_speedup_vs_reference_q100(self):
        # At 100 queries the O(I × Q) rescan term is small, so the asserted
        # floor is looser than the 5× criterion at 1000 queries.
        fast = best_of(3, time_selection, num_queries=100)
        reference = time_selection(num_queries=100, use_reference=True)
        assert reference / fast >= 2.0


class TestEstimatorBenchmarks:
    def test_estimator_ingest(self, benchmark):
        seconds = benchmark.pedantic(
            time_estimator_ingest, rounds=1, iterations=1
        )
        assert seconds > 0

    @skip_perf_asserts
    def test_estimator_ingest_speedup_vs_reference(self):
        fast = best_of(3, time_estimator_ingest)
        reference = time_estimator_ingest(use_reference=True)
        speedup = reference / fast
        assert speedup >= ESTIMATOR_SPEEDUP_FLOOR, (
            f"estimator ingest regressed: only {speedup:.1f}x over the "
            f"per-tuple reference (floor {ESTIMATOR_SPEEDUP_FLOOR}x); "
            f"fast={fast * 1e3:.2f} ms reference={reference * 1e3:.2f} ms"
        )


class TestNodeBenchmarks:
    def test_node_tick_throughput(self, benchmark):
        seconds = benchmark.pedantic(time_node_ticks, rounds=1, iterations=1)
        benchmark.extra_info["ticks_per_second"] = 50 / seconds
        assert seconds > 0
