"""Ablation benchmarks for the design choices called out in DESIGN.md.

* updateSIC dissemination on/off (Figure 4 mechanism);
* within-query tuple selection order (Algorithm 1 line 16);
* STW duration (§6 approximation).
"""

from repro.core.balance_sic import SelectionStrategy
from repro.experiments import ablations


def test_ablation_updatesic(bench_experiment):
    result = bench_experiment(ablations.run_update_sic_ablation, scale="small", num_nodes=3)
    modes = {row["update_sic"] for row in result.rows}
    assert modes == {"enabled", "disabled"}
    assert all(row["jains_index"] > 0.7 for row in result.rows)


def test_ablation_selection_strategy(bench_experiment):
    result = bench_experiment(ablations.run_selection_ablation, scale="small", num_nodes=3)
    strategies = {row["selection"] for row in result.rows}
    assert strategies == set(SelectionStrategy.ALL)
    by_strategy = {row["selection"]: row for row in result.rows}
    # Keeping the highest-SIC tuples never yields a lower mean SIC than
    # keeping the lowest-SIC tuples (it may tie when shedding is light).
    assert (
        by_strategy[SelectionStrategy.HIGHEST_SIC]["mean_sic"]
        >= by_strategy[SelectionStrategy.LOWEST_SIC]["mean_sic"] - 0.03
    )


def test_ablation_stw_duration(bench_experiment):
    result = bench_experiment(
        ablations.run_stw_ablation, scale="small", stw_values=(2.0, 6.0)
    )
    rows = sorted(result.rows, key=lambda r: r["stw_seconds"])
    # A longer STW measures the (underloaded) deployment closer to 1.
    assert rows[-1]["mean_sic"] >= rows[0]["mean_sic"] - 0.02
