"""Benchmark regenerating Figure 6 (SIC vs result error, aggregate workload)."""

from repro.experiments import fig06_sic_correlation_aggregate as fig06


def test_fig06_sic_correlation_aggregate(bench_experiment):
    result = bench_experiment(
        fig06.run,
        scale="small",
        kinds=("avg", "count", "max"),
        datasets=("gaussian", "planetlab"),
        overload_fractions=(0.3, 0.7),
        rate=60.0,
    )
    # Shape check: within each (query, dataset) series the higher-SIC point
    # has the lower error.
    series = {}
    for row in result.rows:
        series.setdefault((row["query"], row["dataset"]), []).append(
            (row["sic"], row["error"])
        )
    for points in series.values():
        points.sort()
        assert points[0][1] >= points[-1][1] - 0.05
