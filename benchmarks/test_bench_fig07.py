"""Benchmark regenerating Figure 7 (SIC vs result error, complex workload)."""

from repro.experiments import fig07_sic_correlation_complex as fig07


def test_fig07_sic_correlation_complex(bench_experiment):
    result = bench_experiment(
        fig07.run,
        scale="small",
        datasets=("gaussian", "planetlab"),
        overload_fractions=(0.3, 0.7),
    )
    assert {row["query"] for row in result.rows} == {"top5", "cov"}
    # TOP-5 Kendall distance shrinks as SIC grows.
    top5 = sorted(
        [(r["sic"], r["error"]) for r in result.rows if r["query"] == "top5"]
    )
    assert top5[0][1] >= top5[-1][1] - 0.1
