"""Benchmarks for §7.6: shedder execution-time overhead.

Two measurements:

* a micro-benchmark timing one shedder invocation on identical synthetic
  input-buffer contents for the fair and the random shedder (this is the
  direct analogue of the paper's per-batch execution-time comparison);
* the full overhead experiment, which also reports meta-data counters.
"""


from repro.core.shedding import BalanceSicShedder, RandomShedder
from repro.experiments import overhead
from repro.experiments.overhead import make_synthetic_buffer


BUFFER = make_synthetic_buffer(num_queries=20, batches_per_query=10, tuples_per_batch=40)
CAPACITY = sum(len(b) for b in BUFFER) // 3
REPORTED = {f"q{i}": 0.05 * (i % 5) for i in range(20)}


def test_overhead_balance_sic_shedder_invocation(benchmark):
    shedder = BalanceSicShedder(seed=0)
    decision = benchmark(shedder.shed, BUFFER, CAPACITY, REPORTED)
    assert decision.kept_tuples <= CAPACITY


def test_overhead_random_shedder_invocation(benchmark):
    shedder = RandomShedder(seed=0)
    decision = benchmark(shedder.shed, BUFFER, CAPACITY, REPORTED)
    assert decision.kept_tuples <= CAPACITY


def test_overhead_experiment_reports_metadata(bench_experiment):
    result = bench_experiment(overhead.run, scale="small", num_queries=8, num_nodes=2)
    shedders = {row["shedder"] for row in result.rows}
    assert shedders == {"balance-sic", "random"}
    assert all(row["bytes_sent"] > 0 for row in result.rows)
