"""Unit tests for the FIT and utility-maximisation baselines (§7.5)."""

import pytest

from repro.baselines.fit import FitOptimizer
from repro.baselines.problem import (
    AllocationProblem,
    AllocationResult,
    QueryDemand,
    problem_from_deployment,
)
from repro.baselines.utility_max import UtilityMaxOptimizer
from repro.federation.deployment import RoundRobinPlacement
from repro.workloads.generators import (
    WorkloadSpec,
    compute_node_budgets,
    generate_complex_workload,
)


def symmetric_problem(num_queries=10, capacity=200.0):
    """Identical queries competing for a single node's capacity."""
    demands = [
        QueryDemand(query_id=f"q{i}", input_rate=100.0, node_costs={"n0": 1.0})
        for i in range(num_queries)
    ]
    return AllocationProblem(queries=demands, node_capacities={"n0": capacity})


class TestProblemValidation:
    def test_rejects_empty_queries_or_nodes(self):
        with pytest.raises(ValueError):
            AllocationProblem(queries=[], node_capacities={"n0": 1.0})
        with pytest.raises(ValueError):
            AllocationProblem(
                queries=[QueryDemand("q", 1.0, node_costs={})], node_capacities={}
            )

    def test_rejects_unknown_node_reference(self):
        with pytest.raises(ValueError):
            AllocationProblem(
                queries=[QueryDemand("q", 1.0, node_costs={"missing": 1.0})],
                node_capacities={"n0": 1.0},
            )

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            QueryDemand("q", input_rate=0.0)


class TestFitOptimizer:
    def test_respects_node_capacity(self):
        problem = symmetric_problem(num_queries=10, capacity=200.0)
        result = FitOptimizer().solve(problem)
        admitted = sum(
            result.fractions[d.query_id] * d.input_rate for d in problem.queries
        )
        assert admitted <= 200.0 + 1e-6

    def test_maximises_total_throughput(self):
        problem = symmetric_problem(num_queries=10, capacity=200.0)
        result = FitOptimizer().solve(problem)
        admitted = sum(
            result.fractions[d.query_id] * d.input_rate for d in problem.queries
        )
        assert admitted == pytest.approx(200.0, rel=1e-3)

    def test_unfair_when_queries_have_different_costs(self):
        # Cheap queries are served fully, expensive ones starved: classic FIT.
        demands = [
            QueryDemand(f"cheap{i}", input_rate=100.0, node_costs={"n0": 0.5})
            for i in range(3)
        ] + [
            QueryDemand(f"dear{i}", input_rate=100.0, node_costs={"n0": 5.0})
            for i in range(3)
        ]
        problem = AllocationProblem(demands, {"n0": 150.0})
        result = FitOptimizer().solve(problem)
        assert result.queries_fully_served() >= 3
        assert result.queries_fully_starved() >= 2
        assert result.jains_index_of_fractions() < 0.7

    def test_everything_served_when_capacity_abundant(self):
        problem = symmetric_problem(num_queries=5, capacity=10_000.0)
        result = FitOptimizer().solve(problem)
        assert result.queries_fully_served() == 5


class TestUtilityMaxOptimizer:
    def test_symmetric_queries_get_equal_fractions(self):
        problem = symmetric_problem(num_queries=8, capacity=400.0)
        result = UtilityMaxOptimizer().solve(problem)
        values = list(result.fractions.values())
        assert max(values) - min(values) < 0.05
        assert result.jains_index_of_fractions() > 0.99

    def test_respects_capacity(self):
        problem = symmetric_problem(num_queries=8, capacity=400.0)
        result = UtilityMaxOptimizer().solve(problem)
        admitted = sum(
            result.fractions[d.query_id] * d.input_rate for d in problem.queries
        )
        assert admitted <= 400.0 * 1.01

    def test_log_utility_avoids_starvation(self):
        demands = [
            QueryDemand(f"cheap{i}", input_rate=100.0, node_costs={"n0": 0.5})
            for i in range(3)
        ] + [
            QueryDemand(f"dear{i}", input_rate=100.0, node_costs={"n0": 5.0})
            for i in range(3)
        ]
        problem = AllocationProblem(demands, {"n0": 150.0})
        result = UtilityMaxOptimizer().solve(problem)
        assert result.queries_fully_starved() == 0
        assert result.jains_index_of_fractions() > FitOptimizer().solve(
            problem
        ).jains_index_of_fractions()

    def test_normalized_log_outputs_in_unit_range(self):
        problem = symmetric_problem()
        result = UtilityMaxOptimizer().solve(problem)
        normalized = UtilityMaxOptimizer.normalized_log_outputs(result, problem)
        assert all(0.0 <= v <= 1.0 for v in normalized.values())

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            UtilityMaxOptimizer(epsilon=0.0)


class TestAllocationResultHelpers:
    def test_output_rates(self):
        problem = symmetric_problem(num_queries=2, capacity=100.0)
        result = AllocationResult(
            fractions={"q0": 0.5, "q1": 0.25}, objective=0.0, solver="test"
        )
        rates = result.output_rates(problem)
        assert rates == {"q0": 50.0, "q1": 25.0}


class TestProblemFromDeployment:
    def test_builds_demands_matching_the_workload(self):
        spec = WorkloadSpec(
            num_queries=6,
            fragments_per_query=2,
            source_rate=10.0,
            sources_per_avg_all_fragment=2,
            machines_per_top5_fragment=1,
            seed=1,
        )
        queries = generate_complex_workload(spec)
        node_ids = ["n0", "n1", "n2"]
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], node_ids
        )
        budgets = compute_node_budgets(queries, placement, 0.25, 0.5, node_ids)
        problem = problem_from_deployment(queries, placement, budgets, 0.25)
        assert problem.num_queries == len(queries)
        assert set(problem.node_capacities) == set(node_ids)
        for demand in problem.queries:
            assert demand.input_rate > 0
            assert demand.node_costs
        # The resulting problem is solvable by both baselines.
        assert FitOptimizer().solve(problem).fractions
        assert UtilityMaxOptimizer().solve(problem).fractions
