"""Unit tests for the CQL-like parser and planner."""

import pytest

from repro.streaming.cql import (
    CqlError,
    FieldRef,
    compile_query,
    parse,
    tokenize,
)
from repro.workloads.aggregate import AVG_STATEMENT, COUNT_STATEMENT, MAX_STATEMENT


class TestTokenizer:
    def test_tokenizes_basic_statement(self):
        tokens = tokenize("Select Avg(t.v) From Src[Range 1 sec]")
        kinds = [t.kind for t in tokens]
        assert "name" in kinds and "lparen" in kinds and "lbracket" in kinds

    def test_rejects_unknown_characters(self):
        with pytest.raises(CqlError):
            tokenize("Select #")


class TestParser:
    def test_parse_avg_statement(self):
        spec = parse(AVG_STATEMENT)
        assert spec.select.name == "avg"
        assert spec.select.args[0] == FieldRef("t", "v")
        assert spec.streams[0].name == "Src"
        assert spec.streams[0].range_seconds == 1.0
        assert spec.having == [] and spec.where == []

    def test_parse_count_with_having(self):
        spec = parse(COUNT_STATEMENT)
        assert spec.select.name == "count"
        assert len(spec.having) == 1
        assert spec.having[0].op == ">="
        assert spec.having[0].right == 50.0

    def test_parse_top5_with_join_and_thousands_separator(self):
        statement = (
            "Select Top5(AllSrcCPU.id) "
            "From AllSrcCPU[Range 1 sec], AllSrcMem[Range 1 sec] "
            "Where AllSrcMem.free >= 100,000 and AllSrcCPU.id = AllSrcMem.id"
        )
        spec = parse(statement)
        assert spec.select.name == "top"
        assert spec.select.top_k == 5
        assert len(spec.streams) == 2
        constants = [c for c in spec.where if not c.is_join]
        joins = [c for c in spec.where if c.is_join]
        assert constants[0].right == pytest.approx(100000.0)
        assert len(joins) == 1

    def test_parse_covariance(self):
        spec = parse(
            "Select Cov(SrcCPU1.value, SrcCPU2.value) "
            "From SrcCPU1[Range 1 sec], SrcCPU2[Range 1 sec]"
        )
        assert spec.select.name == "cov"
        assert len(spec.select.args) == 2

    def test_parse_window_with_slide(self):
        spec = parse("Select Avg(t.v) From Src[Range 10 sec Slide 2 sec]")
        assert spec.streams[0].range_seconds == 10.0
        assert spec.streams[0].slide_seconds == 2.0

    def test_parse_errors(self):
        with pytest.raises(CqlError):
            parse("Avg(t.v) From Src[Range 1 sec]")  # missing Select
        with pytest.raises(CqlError):
            parse("Select Avg(t.v) From Src")  # missing window
        with pytest.raises(CqlError):
            parse("Select Avg(t.v) From Src[Range 1 sec] Whatever t.v > 3")


class TestPlanner:
    def test_compile_avg_builds_valid_graph(self):
        graph = compile_query(AVG_STATEMENT, query_id="q", sources={"Src": ["s1"]})
        graph.validate()
        assert graph.num_sources == 1
        names = [op.name for op in graph.operators.values()]
        assert any(name.startswith("avg") for name in names)
        assert any(name == "output" for name in names)

    def test_compile_max_and_count(self):
        for statement, marker in ((MAX_STATEMENT, "max"), (COUNT_STATEMENT, "count")):
            graph = compile_query(statement, query_id="q", sources={"Src": ["s1"]})
            assert any(
                op.name.startswith(marker) for op in graph.operators.values()
            )

    def test_multiple_sources_get_a_union(self):
        graph = compile_query(
            AVG_STATEMENT, query_id="q", sources={"Src": ["s1", "s2", "s3"]}
        )
        assert graph.num_sources == 3
        assert any(op.name.startswith("union") for op in graph.operators.values())

    def test_compile_top5_includes_join_filter_and_topk(self):
        statement = (
            "Select Top5(AllSrcCPU.id) "
            "From AllSrcCPU[Range 1 sec], AllSrcMem[Range 1 sec] "
            "Where AllSrcMem.free >= 100000 and AllSrcCPU.id = AllSrcMem.id"
        )
        graph = compile_query(
            statement,
            query_id="q",
            sources={"AllSrcCPU": ["cpu1"], "AllSrcMem": ["mem1"]},
        )
        names = [op.name for op in graph.operators.values()]
        assert any(name.startswith("join") for name in names)
        assert any(name.startswith("filter") for name in names)
        assert any(name.startswith("top5") for name in names)

    def test_compile_cov_builds_two_port_covariance(self):
        graph = compile_query(
            "Select Cov(SrcCPU1.value, SrcCPU2.value) "
            "From SrcCPU1[Range 1 sec], SrcCPU2[Range 1 sec]",
            query_id="q",
        )
        assert any(op.name.startswith("cov") for op in graph.operators.values())

    def test_unsupported_select_function_rejected(self):
        with pytest.raises(CqlError):
            compile_query("Select Median(t.v) From Src[Range 1 sec]", query_id="q")

    def test_empty_source_list_rejected(self):
        with pytest.raises(CqlError):
            compile_query(AVG_STATEMENT, query_id="q", sources={"Src": []})

    def test_compiled_query_executes_end_to_end(self):
        from repro.core.tuples import Batch, Tuple

        graph = compile_query(COUNT_STATEMENT, query_id="q", sources={"Src": ["s1"]})
        fragments = graph.partition({op: "f0" for op in graph.operators})
        fragment = next(iter(fragments.values()))
        tuples = [
            Tuple(timestamp=0.1 * i, sic=0.1, values={"v": float(v)}, source_id="s1")
            for i, v in enumerate([10, 60, 70, 20, 90])
        ]
        fragment.deliver(Batch("q", tuples))
        out = fragment.process(now=2.0)
        assert out.results[0].tuples[0].values["count"] == pytest.approx(3.0)
