"""Columnar window bucketing ≡ the seed per-tuple window, plus SIC
conservation properties.

``TimeWindow.insert_block`` / ``ImmediateWindow.insert_block`` must close
panes with identical membership and ordering to the seed tuple-at-a-time
implementations preserved in :mod:`repro.streaming._reference`, for any
insertion sequence — including out-of-order blocks (fallback path), sliding
windows (SIC shares) and late tuples.  Pane SIC matches the seed exactly
for time-ordered input and up to float-summation reordering (last ULP)
otherwise — the seed re-summed after sorting, the new panes accumulate in
insertion order — hence the ``abs=1e-12`` tolerance on pane SIC below,
while everything else is compared with ``==``.  Pane SIC must also be
*conserved*: everything inserted is either in a closed pane, still pending,
or provably lost to lateness.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import ColumnBlock
from repro.streaming._reference import ReferenceImmediateWindow, ReferenceTimeWindow
from repro.streaming.windows import ImmediateWindow, TimeWindow


def make_block(timestamps, sics=None, seed=0):
    rng = random.Random(seed)
    if sics is None:
        sics = [rng.uniform(1e-5, 1e-2) for _ in timestamps]
    values = {"v": [rng.uniform(0.0, 100.0) for _ in timestamps]}
    return ColumnBlock(list(timestamps), list(sics), values, source_id="s")


def assert_panes_identical(columnar_panes, reference_panes):
    assert len(columnar_panes) == len(reference_panes)
    for cp, rp in zip(columnar_panes, reference_panes):
        assert cp.start == rp.start
        assert cp.end == rp.end
        assert len(cp) == len(rp)
        assert cp.sic == pytest.approx(rp.total_sic, rel=0, abs=1e-12)
        c_tuples = cp.tuples
        assert [t.timestamp for t in c_tuples] == [t.timestamp for t in rp.tuples]
        assert [t.sic for t in c_tuples] == [t.sic for t in rp.tuples]
        assert [t.values for t in c_tuples] == [t.values for t in rp.tuples]


class TestTumblingEquivalence:
    def test_insert_block_matches_per_tuple_reference(self):
        fast = TimeWindow(1.0)
        reference = ReferenceTimeWindow(1.0)
        for b in range(40):
            start = b * 0.25
            step = 0.25 / 50
            block = make_block(
                [start + (i + 0.5) * step for i in range(50)], seed=b
            )
            fast.insert_block(block)
            reference.insert(block.to_tuples())
            now = start + 0.25
            assert_panes_identical(fast.advance(now), reference.advance(now))
            assert fast.pending_count() == reference.pending_count()
        horizon = 40 * 0.25 + 2.0
        assert_panes_identical(fast.advance(horizon), reference.advance(horizon))

    def test_block_straddling_many_panes(self):
        fast = TimeWindow(0.5)
        reference = ReferenceTimeWindow(0.5)
        step = 3.0 / 100
        block = make_block([(i + 0.5) * step for i in range(100)], seed=1)
        fast.insert_block(block)
        reference.insert(block.to_tuples())
        assert fast.pending_count() == reference.pending_count() == 100
        assert_panes_identical(fast.advance(10.0), reference.advance(10.0))

    def test_unsorted_block_falls_back_exactly(self):
        fast = TimeWindow(1.0)
        reference = ReferenceTimeWindow(1.0)
        rng = random.Random(3)
        timestamps = [rng.uniform(0.0, 3.0) for _ in range(80)]
        block = make_block(timestamps, seed=3)
        fast.insert_block(block)
        reference.insert(block.to_tuples())
        assert_panes_identical(fast.advance(10.0), reference.advance(10.0))

    def test_late_tuples_dropped_identically(self):
        fast = TimeWindow(1.0, allowed_lateness=0.0)
        reference = ReferenceTimeWindow(1.0, allowed_lateness=0.0)
        early = make_block([0.1, 0.4, 0.9], seed=4)
        fast.insert_block(early)
        reference.insert(early.to_tuples())
        assert_panes_identical(fast.advance(1.0), reference.advance(1.0))
        # Tuples for the already-closed pane must be dropped by both paths.
        late = make_block([0.5, 0.6, 1.2], seed=5)
        fast.insert_block(late)
        reference.insert(late.to_tuples())
        assert fast.pending_count() == reference.pending_count() == 1
        assert_panes_identical(fast.advance(5.0), reference.advance(5.0))

    def test_range_insert_uses_only_the_range(self):
        window = TimeWindow(1.0)
        block = make_block([0.1, 0.2, 0.3, 0.4, 0.5], sics=[1.0] * 5)
        window.insert_block(block, lo=1, hi=4)
        assert window.pending_count() == 3
        (pane,) = window.advance(5.0)
        assert [t.timestamp for t in pane.tuples] == [0.2, 0.3, 0.4]
        assert pane.sic == pytest.approx(3.0)


class TestSlidingEquivalence:
    def test_sliding_shares_match_reference(self):
        fast = TimeWindow(1.0, slide_seconds=0.25)
        reference = ReferenceTimeWindow(1.0, slide_seconds=0.25)
        for b in range(12):
            start = b * 0.25
            step = 0.25 / 20
            block = make_block(
                [start + (i + 0.5) * step for i in range(20)], seed=b
            )
            fast.insert_block(block)
            reference.insert(block.to_tuples())
        assert_panes_identical(fast.advance(20.0), reference.advance(20.0))


class TestMixedSchemaFallback:
    def test_heterogeneous_schemas_in_one_pane_fall_back_to_tuples(self):
        """Blocks with different payload fields in one pane must behave like
        the seed per-tuple path (which tolerated mixed payload dicts), not
        crash the columnar merge."""
        from repro.streaming.operators.stateless import SourceReceiver

        cpu = ColumnBlock([0.1, 0.2], [0.5, 0.5], {"value": [1.0, 2.0]}, "cpu")
        mem = ColumnBlock([0.15, 0.25], [0.5, 0.5], {"free": [3.0, 4.0]}, "mem")
        receiver = SourceReceiver("any")
        receiver.ingest_block(cpu)
        receiver.ingest_block(mem)
        produced = receiver.advance(1.0)
        assert [t.values for t in produced] == [
            {"value": 1.0},
            {"value": 2.0},
            {"free": 3.0},
            {"free": 4.0},
        ]
        # Equation 3: the pane's SIC (2.0) is split over the 4 outputs.
        assert [t.sic for t in produced] == [0.5] * 4

    def test_mixed_schema_pane_aggregates_match_per_tuple_path(self):
        """Operators pulling columns must fall back to the per-tuple loop —
        not drop rows — when a pane materialized due to mixed schemas."""
        from repro.streaming.operators.aggregate import Average, GroupByAggregate
        from repro.streaming.operators.topk import TopK

        def mixed_blocks():
            return (
                ColumnBlock([0.1, 0.2], [0.5, 0.5], {"v": [10.0, 20.0]}, "s1"),
                ColumnBlock(
                    [0.15], [0.5], {"v": [60.0], "extra": ["x"]}, "s2"
                ),
            )

        columnar_avg = Average(field="v", window_seconds=1.0)
        for block in mixed_blocks():
            columnar_avg.ingest_block(block)
        per_tuple_avg = Average(field="v", window_seconds=1.0)
        for block in mixed_blocks():
            per_tuple_avg.ingest(block.to_tuples())
        (c_out,) = columnar_avg.advance(2.0)
        (r_out,) = per_tuple_avg.advance(2.0)
        assert c_out.values == r_out.values == {"avg": 30.0}
        assert c_out.sic == r_out.sic

        topk = TopK(k=2, value_field="v", id_field="v", window_seconds=1.0)
        for block in mixed_blocks():
            topk.ingest_block(block)
        ranked = topk.advance(2.0)
        assert [t.values["v"] for t in ranked] == [60.0, 20.0]

        grouped = GroupByAggregate(
            key_field="v", value_field="v", aggregate="count", window_seconds=1.0
        )
        for block in mixed_blocks():
            grouped.ingest_block(block)
        assert len(grouped.advance(2.0)) == 3

    def test_non_uniform_payload_builder_raises_clearly(self):
        from repro.workloads.sources import StreamSource

        flip = {"state": False}

        def builder():
            flip["state"] = not flip["state"]
            return {"a": 1} if flip["state"] else {"b": 2}

        source = StreamSource("s", rate=8.0, payload_builder=builder)
        with pytest.raises(ValueError, match="non-uniform field set"):
            source.generate_block(0.0, 1.0)

    def test_mixed_schema_pane_column_access_returns_none(self):
        window = ImmediateWindow()
        window.insert_block(ColumnBlock([0.1], [1.0], {"a": [1]}, "s1"))
        window.insert_block(ColumnBlock([0.2], [1.0], {"b": [2]}, "s2"))
        (pane,) = window.advance(1.0)
        assert pane.values_column("a") is None
        assert pane.as_block() is None
        assert [t.values for t in pane.tuples] == [{"a": 1}, {"b": 2}]
        assert pane.sic == pytest.approx(2.0)


class TestImmediateEquivalence:
    def test_mixed_blocks_and_tuples_preserve_order(self):
        fast = ImmediateWindow()
        reference = ReferenceImmediateWindow()
        block_a = make_block([0.3, 0.1, 0.2], seed=6)  # insertion order kept
        block_b = make_block([0.6, 0.5], seed=7)
        fast.insert_block(block_a)
        fast.insert(block_b.to_tuples())
        reference.insert(block_a.to_tuples())
        reference.insert(block_b.to_tuples())
        assert_panes_identical(fast.advance(1.0), reference.advance(1.0))
        assert fast.advance(2.0) == [] == reference.advance(2.0)


# ---------------------------------------------------------------- properties
@st.composite
def block_stream(draw):
    """A sequence of (mostly sorted) blocks plus a window configuration."""
    num_blocks = draw(st.integers(min_value=1, max_value=6))
    blocks = []
    t = 0.0
    for b in range(num_blocks):
        count = draw(st.integers(min_value=0, max_value=30))
        jitter = draw(st.booleans())
        timestamps = []
        for _ in range(count):
            t += draw(st.floats(min_value=0.001, max_value=0.4))
            timestamps.append(t)
        if jitter and len(timestamps) > 2:
            i = draw(st.integers(min_value=0, max_value=len(timestamps) - 2))
            timestamps[i], timestamps[i + 1] = timestamps[i + 1], timestamps[i]
        sics = [
            draw(st.floats(min_value=0.0, max_value=1e-2, allow_nan=False))
            for _ in range(count)
        ]
        blocks.append((timestamps, sics))
    size = draw(st.sampled_from([0.5, 1.0, 2.0]))
    slide = draw(st.sampled_from([None, 0.25, 0.5]))
    if slide is not None and slide > size:
        slide = size
    return blocks, size, slide


class TestPaneSicConservation:
    @settings(max_examples=60, deadline=None)
    @given(block_stream())
    def test_insert_block_conserves_sic(self, stream):
        """Inserted SIC == closed-pane SIC + pending SIC (nothing late here:
        every pane is closed at the end with generous lateness headroom)."""
        blocks, size, slide = stream
        window = TimeWindow(size, slide_seconds=slide)
        inserted_sic = 0.0
        inserted_count = 0
        for timestamps, sics in blocks:
            block = make_block(timestamps, sics=sics)
            window.insert_block(block)
            inserted_sic += sum(sics)
            inserted_count += len(timestamps)
        panes = window.advance(1e9)
        assert window.pending_count() == 0
        closed_sic = sum(p.sic for p in panes)
        closed_count = sum(len(p) for p in panes)
        if slide is None:
            # Tumbling: every tuple lands in exactly one pane.
            assert closed_count == inserted_count
        else:
            # Sliding: a tuple is split across >= 1 panes but its SIC is not.
            assert closed_count >= inserted_count
        assert closed_sic == pytest.approx(inserted_sic, rel=0, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(block_stream())
    def test_insert_block_equals_reference_randomized(self, stream):
        blocks, size, slide = stream
        fast = TimeWindow(size, slide_seconds=slide)
        reference = ReferenceTimeWindow(size, slide_seconds=slide)
        for timestamps, sics in blocks:
            block = make_block(timestamps, sics=sics)
            fast.insert_block(block)
            reference.insert(block.to_tuples())
        assert_panes_identical(fast.advance(1e9), reference.advance(1e9))
        assert fast.pending_count() == reference.pending_count()
