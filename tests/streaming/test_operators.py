"""Unit tests for the streaming operators and their SIC propagation."""

import pytest

from repro.core.tuples import Tuple
from repro.streaming.operators import (
    Average,
    Count,
    Covariance,
    CovarianceMerge,
    CovarianceStats,
    Filter,
    GroupByAggregate,
    Max,
    Min,
    OutputOperator,
    PartialAverage,
    AverageMerge,
    Project,
    SourceReceiver,
    Sum,
    TopK,
    TopKMerge,
    Union,
    WindowEquiJoin,
)


def make_tuples(values, field="v", start=0.1, spacing=0.1, sic=0.1, **extra):
    tuples = []
    for i, v in enumerate(values):
        payload = {field: v}
        payload.update({k: ex[i] for k, ex in extra.items()})
        tuples.append(Tuple(timestamp=start + i * spacing, sic=sic, values=payload))
    return tuples


class TestStatelessOperators:
    def test_source_receiver_passes_tuples_through(self):
        op = SourceReceiver("src-1")
        op.ingest(make_tuples([1, 2, 3]))
        out = op.advance(now=1.0)
        assert [t.values["v"] for t in out] == [1, 2, 3]
        assert sum(t.sic for t in out) == pytest.approx(0.3)

    def test_project_keeps_only_selected_fields(self):
        op = Project(["a"])
        op.ingest([Tuple(0.1, 0.1, {"a": 1, "b": 2})])
        out = op.advance(now=1.0)
        assert out[0].values == {"a": 1}

    def test_filter_drops_non_matching_and_preserves_sic(self):
        op = Filter.field_threshold("v", ">=", 50)
        op.ingest(make_tuples([10, 60, 70, 20], sic=0.25))
        out = op.advance(now=1.0)
        assert [t.values["v"] for t in out] == [60, 70]
        # Equation 3: the whole consumed SIC is carried by the survivors.
        assert sum(t.sic for t in out) == pytest.approx(1.0)

    def test_filter_emitting_nothing_loses_sic(self):
        op = Filter.field_threshold("v", ">=", 100)
        op.ingest(make_tuples([1, 2], sic=0.5))
        assert op.advance(now=1.0) == []
        assert op.lost_sic == pytest.approx(1.0)

    def test_filter_rejects_unknown_comparator(self):
        with pytest.raises(ValueError):
            Filter.field_threshold("v", "~", 1)

    def test_union_merges_ports_in_timestamp_order(self):
        op = Union(num_ports=2)
        op.ingest(make_tuples([1], start=0.5), port=0)
        op.ingest(make_tuples([2], start=0.2), port=1)
        out = op.advance(now=1.0)
        assert [t.values["v"] for t in out] == [2, 1]

    def test_output_operator_is_pass_through(self):
        op = OutputOperator()
        op.ingest(make_tuples([7]))
        assert op.advance(now=1.0)[0].values["v"] == 7

    def test_invalid_port_rejected(self):
        op = Union(num_ports=2)
        with pytest.raises(ValueError):
            op.ingest(make_tuples([1]), port=5)


class TestAggregates:
    def test_average_over_window(self):
        op = Average("v", window_seconds=1.0)
        op.ingest(make_tuples([10, 20, 30], sic=0.1))
        out = op.advance(now=2.0)
        assert len(out) == 1
        assert out[0].values["avg"] == pytest.approx(20.0)
        assert out[0].sic == pytest.approx(0.3)

    def test_sum_min_max(self):
        for cls, expected, field in ((Sum, 60.0, "sum"), (Min, 10.0, "min"), (Max, 30.0, "max")):
            op = cls("v", window_seconds=1.0)
            op.ingest(make_tuples([10, 20, 30]))
            assert op.advance(now=2.0)[0].values[field] == pytest.approx(expected)

    def test_count_with_having_predicate(self):
        predicate = Filter.field_threshold("v", ">=", 50).predicate
        op = Count("v", window_seconds=1.0, predicate=predicate)
        op.ingest(make_tuples([10, 60, 70, 20, 55]))
        out = op.advance(now=2.0)
        assert out[0].values["count"] == pytest.approx(3.0)

    def test_count_of_empty_qualifying_set_is_zero_not_missing(self):
        predicate = Filter.field_threshold("v", ">=", 1000).predicate
        op = Count("v", window_seconds=1.0, predicate=predicate)
        op.ingest(make_tuples([1, 2, 3]))
        out = op.advance(now=2.0)
        assert out[0].values["count"] == 0.0

    def test_no_window_data_emits_nothing(self):
        op = Average("v", window_seconds=1.0)
        assert op.advance(now=5.0) == []

    def test_group_by_aggregate_emits_one_tuple_per_group(self):
        op = GroupByAggregate("id", "v", aggregate="avg", window_seconds=1.0)
        op.ingest(make_tuples([1, 3, 10], id=["a", "a", "b"]))
        out = op.advance(now=2.0)
        by_key = {t.values["id"]: t.values["avg"] for t in out}
        assert by_key == {"a": pytest.approx(2.0), "b": pytest.approx(10.0)}
        # SIC divided across the two groups.
        assert sum(t.sic for t in out) == pytest.approx(0.3)

    def test_group_by_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError):
            GroupByAggregate("id", "v", aggregate="median")


class TestTopK:
    def test_ranks_by_value_and_truncates_to_k(self):
        op = TopK(k=2, value_field="value", id_field="id", window_seconds=1.0)
        op.ingest(
            make_tuples([5, 50, 20], field="value", id=["a", "b", "c"])
        )
        out = op.advance(now=2.0)
        assert [(t.values["id"], t.values["rank"]) for t in out] == [("b", 1), ("c", 2)]

    def test_duplicate_ids_keep_best_value(self):
        op = TopK(k=3, value_field="value", id_field="id", window_seconds=1.0)
        op.ingest(make_tuples([5, 90, 50], field="value", id=["a", "a", "b"]))
        out = op.advance(now=2.0)
        assert out[0].values["id"] == "a"
        assert out[0].values["value"] == pytest.approx(90)

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            TopK(k=0, value_field="value", id_field="id")

    def test_topk_merge_combines_candidate_lists(self):
        op = TopKMerge(k=2, value_field="value", id_field="id", window_seconds=1.0)
        op.ingest(make_tuples([10, 20], field="value", id=["a", "b"]), port=0)
        op.ingest(make_tuples([30], field="value", id=["c"]), port=1)
        out = op.advance(now=2.0)
        assert [t.values["id"] for t in out] == ["c", "b"]


class TestJoin:
    def test_equi_join_matches_keys_within_window(self):
        op = WindowEquiJoin(left_key="id", right_key="id", window_seconds=1.0)
        op.ingest(make_tuples([80], field="value", id=["m1"]), port=0)
        op.ingest(make_tuples([200000], field="free", id=["m1"]), port=1)
        out = op.advance(now=2.0)
        assert len(out) == 1
        assert out[0].values["value"] == 80
        assert out[0].values["free"] == 200000

    def test_no_match_emits_nothing_and_loses_sic(self):
        op = WindowEquiJoin(left_key="id", right_key="id", window_seconds=1.0)
        op.ingest(make_tuples([80], field="value", id=["m1"], sic=0.5), port=0)
        op.ingest(make_tuples([1], field="free", id=["m2"], sic=0.5), port=1)
        assert op.advance(now=2.0) == []
        assert op.lost_sic == pytest.approx(1.0)

    def test_join_sic_conserved_over_outputs(self):
        op = WindowEquiJoin(left_key="id", right_key="id", window_seconds=1.0)
        op.ingest(make_tuples([1, 2], field="value", id=["a", "a"], sic=0.25), port=0)
        op.ingest(make_tuples([3], field="free", id=["a"], sic=0.5), port=1)
        out = op.advance(now=2.0)
        assert len(out) == 2
        assert sum(t.sic for t in out) == pytest.approx(1.0)


class TestCovariance:
    def test_positive_covariance_for_correlated_series(self):
        op = Covariance(window_seconds=1.0)
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2.0, 4.0, 6.0, 8.0]
        op.ingest(make_tuples(xs, field="value"), port=0)
        op.ingest(make_tuples(ys, field="value"), port=1)
        out = op.advance(now=2.0)
        assert out[0].values["cov"] > 0

    def test_partials_merge_to_the_same_covariance(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        ys = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0]
        whole = CovarianceStats()
        for x, y in zip(xs, ys):
            whole.add(x, y)
        left = CovarianceStats()
        right = CovarianceStats()
        for x, y in zip(xs[:3], ys[:3]):
            left.add(x, y)
        for x, y in zip(xs[3:], ys[3:]):
            right.add(x, y)
        merged = left.merge(right)
        assert merged.covariance() == pytest.approx(whole.covariance())

    def test_merge_operator_combines_partial_payloads(self):
        cov_op = Covariance(window_seconds=1.0, emit_partials=True)
        cov_op.ingest(make_tuples([1.0, 2.0], field="value"), port=0)
        cov_op.ingest(make_tuples([2.0, 4.0], field="value"), port=1)
        partials = cov_op.advance(now=2.0)
        merge = CovarianceMerge(num_ports=1, window_seconds=1.0)
        merge.ingest(partials, port=0)
        out = merge.advance(now=4.0)
        assert len(out) == 1
        assert "cov" in out[0].values

    def test_covariance_stats_empty(self):
        assert CovarianceStats().covariance() is None


class TestPartialAverage:
    def test_partial_then_merge_recovers_global_average(self):
        left = PartialAverage(window_seconds=1.0)
        right = PartialAverage(window_seconds=1.0)
        left.ingest(make_tuples([10.0, 20.0]))
        right.ingest(make_tuples([60.0]))
        merge = AverageMerge(num_ports=2, window_seconds=1.0)
        merge.ingest(left.advance(now=2.0), port=0)
        merge.ingest(right.advance(now=2.0), port=1)
        out = merge.advance(now=4.0)
        assert out[0].values["avg"] == pytest.approx(30.0)

    def test_merge_without_partials_emits_nothing(self):
        merge = AverageMerge(num_ports=1, window_seconds=1.0)
        merge.ingest(make_tuples([1.0]), port=0)
        assert merge.advance(now=3.0) == []
