"""Unit tests for query graphs and fragments."""

import pytest

from repro.core.tuples import Batch, Tuple
from repro.streaming.operators import Average, OutputOperator, SourceReceiver, Union
from repro.streaming.query import Edge, QueryFragment, QueryGraph


def build_simple_graph(query_id="q"):
    graph = QueryGraph(query_id)
    receiver = graph.add_operator(SourceReceiver("src"))
    avg = graph.add_operator(Average("v", window_seconds=1.0))
    output = graph.add_operator(OutputOperator())
    graph.connect(receiver, avg)
    graph.connect(avg, output)
    graph.bind_source("src", receiver)
    graph.set_root(output)
    return graph, receiver, avg, output


def source_batch(query_id, values, source_id="src", start=0.1, sic=0.1):
    tuples = [
        Tuple(timestamp=start + i * 0.1, sic=sic, values={"v": v}, source_id=source_id)
        for i, v in enumerate(values)
    ]
    return Batch(query_id, tuples)


class TestQueryGraph:
    def test_validate_accepts_well_formed_graph(self):
        graph, *_ = build_simple_graph()
        graph.validate()
        assert graph.num_operators == 3
        assert graph.num_sources == 1

    def test_topological_order_respects_edges(self):
        graph, receiver, avg, output = build_simple_graph()
        order = graph.topological_order()
        assert order.index(receiver.operator_id) < order.index(avg.operator_id)
        assert order.index(avg.operator_id) < order.index(output.operator_id)

    def test_cycle_detection(self):
        graph, receiver, avg, output = build_simple_graph()
        graph.edges.append(Edge(output.operator_id, receiver.operator_id))
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_validate_rejects_missing_root_or_sources(self):
        graph = QueryGraph("q")
        receiver = graph.add_operator(SourceReceiver("src"))
        with pytest.raises(ValueError):
            graph.validate()  # no root
        graph.set_root(receiver)
        with pytest.raises(ValueError):
            graph.validate()  # no sources

    def test_connect_requires_registered_operators(self):
        graph = QueryGraph("q")
        a = graph.add_operator(SourceReceiver("src"))
        foreign = OutputOperator()
        with pytest.raises(ValueError):
            graph.connect(a, foreign)

    def test_duplicate_source_binding_rejected(self):
        graph, receiver, *_ = build_simple_graph()
        with pytest.raises(ValueError):
            graph.bind_source("src", receiver)

    def test_partition_into_single_fragment(self):
        graph, *_ = build_simple_graph()
        fragments = graph.partition({op: "f0" for op in graph.operators})
        assert len(fragments) == 1
        fragment = next(iter(fragments.values()))
        assert fragment.is_root
        assert fragment.num_operators == 3
        assert "src" in fragment.source_bindings

    def test_partition_into_two_fragments_wires_the_link(self):
        graph, receiver, avg, output = build_simple_graph()
        assignment = {
            receiver.operator_id: "up",
            avg.operator_id: "up",
            output.operator_id: "down",
        }
        fragments = graph.partition(assignment)
        up = fragments["up"]
        down = fragments["down"]
        assert not up.is_root and down.is_root
        assert up.downstream_fragment_id == down.fragment_id
        assert up.fragment_id in down.upstream_bindings

    def test_partition_requires_full_assignment(self):
        graph, receiver, avg, output = build_simple_graph()
        with pytest.raises(ValueError):
            graph.partition({receiver.operator_id: "f0"})


class TestQueryFragmentExecution:
    def test_single_fragment_produces_results(self):
        graph, *_ = build_simple_graph()
        fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
        fragment.deliver(source_batch("q", [10, 20, 30]))
        # Window [0, 1) closes after 1 s plus lateness.
        out = fragment.process(now=2.0)
        assert len(out.results) == 1
        result_tuple = out.results[0].tuples[0]
        assert result_tuple.values["avg"] == pytest.approx(20.0)
        assert out.processing_cost > 0
        # processed_tuples counts every operator ingest, including the
        # fragment-internal fan-out (receiver, aggregate, output).
        assert out.processed_tuples >= 3

    def test_sic_flows_from_sources_to_results(self):
        graph, *_ = build_simple_graph()
        fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
        fragment.deliver(source_batch("q", [1, 2, 3, 4], sic=0.25))
        out = fragment.process(now=2.0)
        assert out.results[0].sic == pytest.approx(1.0)

    def test_two_fragment_chain_passes_batches_downstream(self):
        graph, receiver, avg, output = build_simple_graph()
        fragments = graph.partition(
            {
                receiver.operator_id: "up",
                avg.operator_id: "up",
                output.operator_id: "down",
            }
        )
        up, down = fragments["up"], fragments["down"]
        up.deliver(source_batch("q", [10, 30]))
        up_out = up.process(now=2.0)
        assert len(up_out.downstream) == 1
        batch = up_out.downstream[0]
        assert batch.fragment_id == down.fragment_id
        assert batch.origin_fragment_id == up.fragment_id
        down.deliver(batch, origin_fragment_id=up.fragment_id)
        down_out = down.process(now=2.5)
        assert len(down_out.results) == 1
        assert down_out.results[0].tuples[0].values["avg"] == pytest.approx(20.0)

    def test_deliver_from_unknown_upstream_raises(self):
        graph, *_ = build_simple_graph()
        fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
        with pytest.raises(ValueError):
            fragment.deliver(source_batch("q", [1]), origin_fragment_id="bogus")

    def test_unknown_source_tuples_are_ignored(self):
        graph, *_ = build_simple_graph()
        fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
        fragment.deliver(source_batch("q", [1], source_id="other-src"))
        out = fragment.process(now=2.0)
        assert out.results == []

    def test_pending_tuples_reports_window_buffering(self):
        graph, *_ = build_simple_graph()
        fragment = next(iter(graph.partition({op: "f0" for op in graph.operators}).values()))
        fragment.deliver(source_batch("q", [1, 2, 3]))
        fragment.process(now=0.2)  # window not closed yet
        assert fragment.pending_tuples() >= 3

    def test_finalize_requires_exit_operator(self):
        fragment = QueryFragment("q", name="f")
        fragment.add_operator(SourceReceiver("s"))
        with pytest.raises(ValueError):
            fragment.finalize()

    def test_manual_fragment_construction(self):
        fragment = QueryFragment("q", name="manual")
        receiver = fragment.add_operator(SourceReceiver("src"))
        union = fragment.add_operator(Union(num_ports=1))
        fragment.connect(receiver, union)
        fragment.bind_source("src", receiver.operator_id)
        fragment.set_exit(union.operator_id)
        fragment.finalize()
        fragment.deliver(source_batch("q", [5]))
        out = fragment.process(now=1.0)
        assert len(out.results) == 1
