"""Differential tests: columnar vs per-tuple input paths of the window join.

The join cannot emit column blocks (its output schema is data-dependent: a
shared field is prefixed only on rows where the two sides disagree), so its
``_process_columnar`` is an explicit fallback and the fast path probes the
pane *columns* instead.  These tests feed the identical stream to one join
instance via ``ingest_block`` (column-backed panes) and to another via
``ingest`` (materialized tuples) and assert byte-identical outputs.
"""

import pytest

from repro.core.columns import ColumnBlock
from repro.streaming.operators.join import WindowEquiJoin


def make_join():
    return WindowEquiJoin(left_key="id", right_key="id", window_seconds=1.0)


def cpu_block(ids, loads, start=0.0, sic=0.01):
    n = len(ids)
    return ColumnBlock(
        timestamps=[start + i * 0.01 for i in range(n)],
        sics=[sic] * n,
        values={"id": list(ids), "cpu": list(loads)},
        source_id="cpu",
    )


def mem_block(ids, frees, start=0.0, sic=0.02):
    n = len(ids)
    return ColumnBlock(
        timestamps=[start + i * 0.01 for i in range(n)],
        sics=[sic] * n,
        values={"id": list(ids), "mem": list(frees)},
        source_id="mem",
    )


def run_join(blocks_by_port, columnar, horizon=3.0):
    join = make_join()
    for port, blocks in blocks_by_port.items():
        for block in blocks:
            if columnar:
                join.ingest_block(block, port=port)
            else:
                join.ingest(block.to_tuples(), port=port)
    return join.advance(horizon)


def assert_same_outputs(columnar, per_tuple):
    assert len(columnar) == len(per_tuple)
    for c, t in zip(columnar, per_tuple):
        assert c.timestamp == t.timestamp
        assert c.sic == t.sic
        assert c.values == t.values
        assert list(c.values) == list(t.values)  # field order too


class TestJoinColumnarIdentity:
    def test_matching_keys_identical(self):
        blocks = {
            0: [cpu_block(["a", "b", "c"], [0.9, 0.5, 0.1])],
            1: [mem_block(["b", "c", "d"], [512.0, 256.0, 128.0])],
        }
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert columnar, "the join must actually produce output"
        assert_same_outputs(columnar, per_tuple)

    def test_duplicate_keys_produce_cross_product_in_same_order(self):
        blocks = {
            0: [cpu_block(["a", "a", "b"], [0.1, 0.2, 0.3])],
            1: [mem_block(["a", "a"], [1.0, 2.0])],
        }
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert len(columnar) == 4  # 2 left 'a' rows x 2 right 'a' rows
        assert_same_outputs(columnar, per_tuple)

    def test_conflicting_shared_fields_get_prefixed_per_row(self):
        # Both sides carry a "v" field: equal on one matching pair,
        # different on the other — the prefix must appear only where the
        # values differ (the data-dependent schema that rules out a
        # columnar output block).
        left = ColumnBlock(
            timestamps=[0.0, 0.01],
            sics=[0.01, 0.01],
            values={"id": ["x", "y"], "v": [1.0, 2.0]},
        )
        right = ColumnBlock(
            timestamps=[0.0, 0.01],
            sics=[0.01, 0.01],
            values={"id": ["x", "y"], "v": [1.0, 99.0]},
        )
        blocks = {0: [left], 1: [right]}
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert_same_outputs(columnar, per_tuple)
        by_id = {t.values["id"]: t.values for t in columnar}
        assert "right_v" not in by_id["x"]
        assert by_id["y"]["v"] == 2.0 and by_id["y"]["right_v"] == 99.0

    def test_none_keys_are_skipped(self):
        blocks = {
            0: [cpu_block(["a", None, "b"], [0.1, 0.2, 0.3])],
            1: [mem_block([None, "b"], [1.0, 2.0])],
        }
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert len(columnar) == 1
        assert_same_outputs(columnar, per_tuple)

    def test_missing_key_column_yields_no_output(self):
        left = cpu_block(["a"], [0.5])
        right = ColumnBlock(
            timestamps=[0.0], sics=[0.01], values={"mem": [1.0]}
        )
        blocks = {0: [left], 1: [right]}
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert columnar == [] and per_tuple == []

    def test_multiple_blocks_per_pane_identical(self):
        blocks = {
            0: [
                cpu_block(["a", "b"], [0.1, 0.2], start=0.0),
                cpu_block(["c"], [0.3], start=0.5),
            ],
            1: [
                mem_block(["b"], [1.0], start=0.1),
                mem_block(["a", "c"], [2.0, 3.0], start=0.6),
            ],
        }
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert len(columnar) == 3
        assert_same_outputs(columnar, per_tuple)

    def test_sic_propagation_equal_on_both_paths(self):
        blocks = {
            0: [cpu_block(["a", "b"], [0.1, 0.2], sic=0.03)],
            1: [mem_block(["a", "b"], [1.0, 2.0], sic=0.05)],
        }
        columnar = run_join(blocks, columnar=True)
        per_tuple = run_join(blocks, columnar=False)
        assert columnar
        total = sum(t.sic for t in columnar)
        # Equation 3: the whole consumed window SIC is divided over outputs.
        assert total == pytest.approx(2 * 0.03 + 2 * 0.05)
        assert [t.sic for t in columnar] == [t.sic for t in per_tuple]

    def test_mixed_representation_falls_back_per_tuple(self):
        # Columnar left, per-tuple right: the join must still produce the
        # per-tuple path's exact output.
        join_mixed = make_join()
        left = cpu_block(["a", "b"], [0.1, 0.2])
        right = mem_block(["a", "b"], [1.0, 2.0])
        join_mixed.ingest_block(left, port=0)
        join_mixed.ingest(right.to_tuples(), port=1)
        mixed = join_mixed.advance(3.0)
        reference = run_join({0: [left], 1: [right]}, columnar=False)
        assert_same_outputs(mixed, reference)


def run_join_normalised(blocks_by_port, columnar, horizon=3.0, items=False):
    join = WindowEquiJoin(
        left_key="id", right_key="id", window_seconds=1.0, columnar_output=True
    )
    for port, blocks in blocks_by_port.items():
        for block in blocks:
            if columnar:
                join.ingest_block(block, port=port)
            else:
                join.ingest(block.to_tuples(), port=port)
    if items:
        return join.advance_items(horizon)
    return join.advance(horizon)


class TestJoinColumnarOutput:
    """The opt-in prefix-normalised merge emits uniform-schema blocks."""

    def test_emits_a_column_block(self):
        blocks = {
            0: [cpu_block(["a", "b", "c"], [0.9, 0.5, 0.1])],
            1: [mem_block(["b", "c", "d"], [512.0, 256.0, 128.0])],
        }
        items = run_join_normalised(blocks, columnar=True, items=True)
        assert len(items) == 1
        assert isinstance(items[0], ColumnBlock)
        # Shared "id" is prefixed on every row; uniform schema.
        assert list(items[0].values) == ["id", "cpu", "right_id", "mem"]

    def test_block_output_matches_row_output(self):
        blocks = {
            0: [cpu_block(["a", "a", "b"], [0.1, 0.2, 0.3], sic=0.03)],
            1: [mem_block(["a", "a", "b"], [1.0, 2.0, 3.0], sic=0.05)],
        }
        columnar = run_join_normalised(blocks, columnar=True)
        per_tuple = run_join_normalised(blocks, columnar=False)
        assert len(columnar) == 5  # 2x2 'a' cross product + 1 'b'
        assert_same_outputs(columnar, per_tuple)

    def test_normalisation_differs_from_default_only_on_equal_shared_fields(self):
        # Shared "v": equal on the 'x' pair, different on the 'y' pair.  The
        # default rule prefixes only 'y'; the normalised rule prefixes both.
        left = ColumnBlock(
            timestamps=[0.0, 0.01],
            sics=[0.01, 0.01],
            values={"id": ["x", "y"], "v": [1.0, 2.0]},
        )
        right = ColumnBlock(
            timestamps=[0.0, 0.01],
            sics=[0.01, 0.01],
            values={"id": ["x", "y"], "v": [1.0, 99.0]},
        )
        blocks = {0: [left], 1: [right]}
        default = run_join(blocks, columnar=True)
        normalised = run_join_normalised(blocks, columnar=True)
        assert len(default) == len(normalised) == 2
        for d, n in zip(default, normalised):
            assert d.timestamp == n.timestamp
            assert d.sic == n.sic
        by_id = {t.values["id"]: t.values for t in normalised}
        # Uniform schema on every row, including where the values were equal.
        assert by_id["x"]["v"] == 1.0 and by_id["x"]["right_v"] == 1.0
        assert by_id["y"]["v"] == 2.0 and by_id["y"]["right_v"] == 99.0
        default_by_id = {t.values["id"]: t.values for t in default}
        assert "right_v" not in default_by_id["x"]  # default rule unchanged

    def test_none_and_missing_keys(self):
        blocks = {
            0: [cpu_block(["a", None, "b"], [0.1, 0.2, 0.3])],
            1: [mem_block([None, "b"], [1.0, 2.0])],
        }
        columnar = run_join_normalised(blocks, columnar=True)
        per_tuple = run_join_normalised(blocks, columnar=False)
        assert len(columnar) == 1
        assert_same_outputs(columnar, per_tuple)
        missing = {
            0: [cpu_block(["a"], [0.5])],
            1: [ColumnBlock(timestamps=[0.0], sics=[0.01], values={"mem": [1.0]})],
        }
        assert run_join_normalised(missing, columnar=True) == []

    def test_sic_propagation_matches_row_path(self):
        blocks = {
            0: [cpu_block(["a", "b"], [0.1, 0.2], sic=0.03)],
            1: [mem_block(["a", "b"], [1.0, 2.0], sic=0.05)],
        }
        columnar = run_join_normalised(blocks, columnar=True)
        per_tuple = run_join_normalised(blocks, columnar=False)
        assert columnar
        assert sum(t.sic for t in columnar) == pytest.approx(2 * 0.03 + 2 * 0.05)
        assert [t.sic for t in columnar] == [t.sic for t in per_tuple]

    def test_mixed_representation_falls_back_to_rows(self):
        join = WindowEquiJoin(
            left_key="id", right_key="id", window_seconds=1.0, columnar_output=True
        )
        left = cpu_block(["a", "b"], [0.1, 0.2])
        right = mem_block(["a", "b"], [1.0, 2.0])
        join.ingest_block(left, port=0)
        join.ingest(right.to_tuples(), port=1)
        mixed = join.advance(3.0)
        reference = run_join_normalised({0: [left], 1: [right]}, columnar=False)
        assert_same_outputs(mixed, reference)
