"""Unit tests for window buffers."""

import pytest

from repro.core.tuples import Tuple
from repro.streaming.windows import CountWindow, ImmediateWindow, TimeWindow


def ts(values, start=0.0, spacing=0.1, sic=0.1):
    return [
        Tuple(timestamp=start + i * spacing, sic=sic, values={"v": v})
        for i, v in enumerate(values)
    ]


class TestImmediateWindow:
    def test_emits_everything_on_advance(self):
        window = ImmediateWindow()
        window.insert(ts([1, 2, 3]))
        panes = window.advance(now=1.0)
        assert len(panes) == 1
        assert len(panes[0]) == 3
        assert window.pending_count() == 0

    def test_no_pane_when_empty(self):
        assert ImmediateWindow().advance(now=1.0) == []

    def test_pending_count(self):
        window = ImmediateWindow()
        window.insert(ts([1, 2]))
        assert window.pending_count() == 2


class TestTimeWindowTumbling:
    def test_pane_closes_after_end_plus_lateness(self):
        window = TimeWindow(1.0, allowed_lateness=0.0)
        window.insert(ts([1, 2, 3], start=0.1, spacing=0.2))
        assert window.advance(now=0.9) == []
        panes = window.advance(now=1.0)
        assert len(panes) == 1
        assert panes[0].start == 0.0 and panes[0].end == 1.0
        assert len(panes[0]) == 3

    def test_allowed_lateness_delays_closing(self):
        window = TimeWindow(1.0, allowed_lateness=0.5)
        window.insert(ts([1], start=0.2))
        assert window.advance(now=1.2) == []
        assert len(window.advance(now=1.5)) == 1

    def test_late_tuples_for_closed_panes_are_dropped(self):
        window = TimeWindow(1.0, allowed_lateness=0.0)
        window.insert(ts([1], start=0.5))
        window.advance(now=1.0)
        window.insert(ts([2], start=0.6))  # pane [0, 1) already closed
        assert window.pending_count() == 0

    def test_tuples_assigned_to_correct_panes(self):
        window = TimeWindow(1.0, allowed_lateness=0.0)
        window.insert(ts([1], start=0.5) + ts([2], start=1.5) + ts([3], start=2.5))
        panes = window.advance(now=3.0)
        assert [len(p) for p in panes] == [1, 1, 1]
        assert [p.start for p in panes] == [0.0, 1.0, 2.0]

    def test_total_sic_preserved_in_pane(self):
        window = TimeWindow(1.0, allowed_lateness=0.0)
        window.insert(ts([1, 2, 3, 4], start=0.1, spacing=0.2, sic=0.25))
        pane = window.advance(now=1.0)[0]
        assert pane.total_sic == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0)
        with pytest.raises(ValueError):
            TimeWindow(1.0, slide_seconds=0.0)
        with pytest.raises(ValueError):
            TimeWindow(1.0, slide_seconds=2.0)
        with pytest.raises(ValueError):
            TimeWindow(1.0, allowed_lateness=-1.0)


class TestTimeWindowSliding:
    def test_tuple_belongs_to_multiple_panes(self):
        window = TimeWindow(1.0, slide_seconds=0.5, allowed_lateness=0.0)
        window.insert(ts([1], start=0.75, sic=0.2))
        panes = window.advance(now=5.0)
        containing = [p for p in panes if len(p) == 1]
        assert len(containing) == 2  # panes [0,1) and [0.5,1.5)

    def test_sic_split_across_panes_conserves_total(self):
        window = TimeWindow(1.0, slide_seconds=0.25, allowed_lateness=0.0)
        window.insert(ts([1], start=0.9, sic=0.4))
        panes = window.advance(now=5.0)
        total = sum(p.total_sic for p in panes)
        assert total == pytest.approx(0.4)

    def test_is_sliding_property(self):
        assert TimeWindow(1.0, slide_seconds=0.5).is_sliding
        assert not TimeWindow(1.0).is_sliding


class TestCountWindow:
    def test_emits_every_n_tuples(self):
        window = CountWindow(3)
        window.insert(ts([1, 2, 3, 4, 5, 6, 7]))
        panes = window.advance(now=0.0)
        assert [len(p) for p in panes] == [3, 3]
        assert window.pending_count() == 1

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            CountWindow(0)

    def test_preserves_order(self):
        window = CountWindow(2)
        window.insert(ts([10, 20, 30, 40]))
        panes = window.advance(now=0.0)
        assert [t.values["v"] for t in panes[0].tuples] == [10, 20]
        assert [t.values["v"] for t in panes[1].tuples] == [30, 40]
