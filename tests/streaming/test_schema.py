"""Unit tests for stream schemas."""

import pytest

from repro.streaming.schema import Field, Schema
from repro.streaming.schema import CPU_SCHEMA, MEMORY_SCHEMA, VALUE_SCHEMA


class TestField:
    def test_untyped_field_accepts_anything(self):
        field = Field("v")
        assert field.validate(1)
        assert field.validate("text")
        assert field.validate(None)

    def test_typed_field_checks_type(self):
        field = Field("v", float)
        assert field.validate(1.5)
        assert field.validate(2)          # ints are acceptable floats
        assert not field.validate(True)   # bools are not numbers here
        assert not field.validate("1.5")

    def test_none_is_always_valid(self):
        assert Field("v", float).validate(None)


class TestSchema:
    def test_of_builds_untyped_schema(self):
        schema = Schema.of("a", "b", name="s")
        assert schema.field_names() == ["a", "b"]
        assert "a" in schema and "missing" not in schema
        assert len(schema) == 2

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Field("a"), Field("a")])

    def test_field_lookup_and_error(self):
        schema = Schema.of("a", "b")
        assert schema.field("a").name == "a"
        with pytest.raises(KeyError):
            schema.field("zzz")

    def test_validate_payload(self):
        schema = Schema([Field("v", float)])
        assert schema.validate({"v": 1.0})
        assert not schema.validate({})
        assert not schema.validate({"v": "bad"})

    def test_project_and_extend(self):
        schema = Schema.of("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.field_names() == ["c", "a"]
        extended = schema.extend(Field("d"))
        assert extended.field_names() == ["a", "b", "c", "d"]

    def test_builtin_workload_schemas(self):
        assert VALUE_SCHEMA.validate({"v": 10.0})
        assert CPU_SCHEMA.validate({"id": "m1", "value": 50.0})
        assert MEMORY_SCHEMA.validate({"id": "m1", "free": 200000.0})
