"""Unit tests for the fragment plan compiler (fused execution).

Covers the structural fusibility rules of :func:`compile_fused_plan`, the
per-tick fallback contract of :meth:`FusedPlan.run_prefix` (decline without
touching state) and the fusion registry switches.
"""

import pytest

from repro.core.columns import ColumnBlock, use_backend
from repro.core.tuples import Batch, Tuple
from repro.streaming.fused import (
    FUSION_MODES,
    compile_fused_plan,
    fused_execution_active,
    fusion_enabled,
    set_fusion,
    use_fusion,
)
from repro.streaming.operators import (
    Average,
    Filter,
    OutputOperator,
    SourceReceiver,
    Union,
)
from repro.streaming.operators.topk import TopK
from repro.streaming.query import QueryGraph


def build_fragment(
    *,
    filters=(),
    aggregate=None,
    slide_seconds=None,
    extra_source=False,
):
    graph = QueryGraph("q")
    receiver = graph.add_operator(SourceReceiver("src"))
    previous = receiver
    for filt in filters:
        op = graph.add_operator(filt)
        graph.connect(previous, op)
        previous = op
    agg = graph.add_operator(
        aggregate
        if aggregate is not None
        else Average("v", window_seconds=1.0, slide_seconds=slide_seconds)
    )
    graph.connect(previous, agg)
    output = graph.add_operator(OutputOperator())
    graph.connect(agg, output)
    graph.bind_source("src", receiver)
    if extra_source:
        graph.bind_source("src2", receiver)
    graph.set_root(output)
    fragment = next(
        iter(graph.partition({op: "f0" for op in graph.operators}).values())
    )
    fragment.finalize()
    return fragment


def source_block(values, start=0.1, sic=0.1):
    n = len(values)
    return ColumnBlock(
        timestamps=[start + 0.1 * i for i in range(n)],
        sics=[sic] * n,
        values={"v": [float(v) for v in values]},
        source_id="src",
    )


class TestFusionRegistry:
    def test_modes_and_default(self):
        assert FUSION_MODES == ("on", "off")
        assert fusion_enabled() in (True, False)

    def test_set_and_scope(self):
        previous = set_fusion("off")
        try:
            assert not fusion_enabled()
            with use_fusion("on"):
                assert fusion_enabled()
            assert not fusion_enabled()
        finally:
            set_fusion(previous)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_fusion("sometimes")

    def test_list_backend_never_fuses(self):
        with use_fusion("on"), use_backend("list"):
            assert not fused_execution_active()

    def test_off_never_fuses(self):
        with use_fusion("off"):
            assert not fused_execution_active()


class TestPlanCompilation:
    def test_bare_aggregate_chain_compiles(self):
        fragment = build_fragment()
        plan = compile_fused_plan(fragment)
        assert plan is not None
        assert plan.filter_ids == ()
        assert plan.suffix_ids == tuple(fragment._order[-2:])
        assert plan.receiver is fragment.operators[plan.receiver_id]
        assert plan.aggregate is fragment.operators[plan.aggregate_id]

    def test_filter_chain_compiles_in_order(self):
        filters = [
            Filter.field_threshold("v", ">=", 10.0),
            Filter.field_threshold("v", "<", 90.0),
        ]
        fragment = build_fragment(filters=filters)
        plan = compile_fused_plan(fragment)
        assert plan is not None
        assert len(plan.filter_ids) == 2
        assert [fragment.operators[i].name for i in plan.filter_ids] == [
            f.name for f in filters
        ]

    def test_opaque_filter_predicate_declines(self):
        fragment = build_fragment(filters=[Filter(lambda t: t.values["v"] > 5)])
        assert compile_fused_plan(fragment) is None

    def test_sliding_window_declines(self):
        fragment = build_fragment(slide_seconds=0.5)
        assert compile_fused_plan(fragment) is None

    def test_non_aggregate_tail_declines(self):
        fragment = build_fragment(
            aggregate=TopK(5, value_field="v", id_field="v", window_seconds=1.0)
        )
        assert compile_fused_plan(fragment) is None

    def test_multiple_source_bindings_decline(self):
        fragment = build_fragment(extra_source=True)
        assert compile_fused_plan(fragment) is None

    def test_non_linear_graph_declines(self):
        graph = QueryGraph("q")
        r1 = graph.add_operator(SourceReceiver("a"))
        r2 = graph.add_operator(SourceReceiver("b"))
        union = graph.add_operator(Union(num_ports=2))
        agg = graph.add_operator(Average("v", window_seconds=1.0))
        out = graph.add_operator(OutputOperator())
        graph.connect(r1, union, port=0)
        graph.connect(r2, union, port=1)
        graph.connect(union, agg)
        graph.connect(agg, out)
        graph.bind_source("a", r1)
        graph.bind_source("b", r2)
        graph.set_root(out)
        fragment = next(
            iter(graph.partition({op: "f0" for op in graph.operators}).values())
        )
        fragment.finalize()
        assert compile_fused_plan(fragment) is None

    def test_rewiring_invalidates_cached_plan(self):
        fragment = build_fragment()
        with use_fusion("on"), use_backend("numpy"):
            first = fragment._fused_plan()
            assert first is not None
            fragment.finalize()  # re-finalize: the cached plan must be rebuilt
            second = fragment._fused_plan()
            assert second is not None
            assert second is not first


class TestRunPrefixFallback:
    def test_per_tuple_items_decline_without_state_change(self):
        fragment = build_fragment()
        plan = compile_fused_plan(fragment)
        tuples = [
            Tuple(timestamp=0.1 * (i + 1), sic=0.25, values={"v": float(i)},
                  source_id="src")
            for i in range(4)
        ]
        fragment.deliver(Batch("q", tuples))
        receiver = plan.receiver
        before = receiver._windows[0].pending_count()
        assert plan.run_prefix(fragment, now=2.0) is False
        assert receiver._windows[0].pending_count() == before

    def test_non_float_filter_column_declines(self):
        fragment = build_fragment(
            filters=[Filter.field_threshold("name", "==", 1.0)]
        )
        plan = compile_fused_plan(fragment)
        assert plan is not None
        block = ColumnBlock(
            timestamps=[0.1, 0.2],
            sics=[0.1, 0.1],
            values={"v": [1.0, 2.0], "name": ["a", "b"]},
            source_id="src",
        )
        plan.receiver._windows[0].insert_block(block, 0, 2)
        assert plan.run_prefix(fragment, now=2.0) is False

    def test_staged_and_fused_fragment_results_match(self):
        results = {}
        for mode in ("on", "off"):
            fragment = build_fragment(
                filters=[Filter.field_threshold("v", ">=", 1.0)]
            )
            with use_fusion(mode), use_backend("numpy"):
                block = source_block([0.0, 1.0, 2.0, 3.0])
                plan = fragment._fused_plan()
                if mode == "on":
                    assert plan is not None
                else:
                    assert plan is None
                receiver = fragment.operators[fragment._order[0]]
                receiver.ingest_block(block)
                out = fragment.process(now=2.0)
            assert len(out.results) == 1
            results[mode] = (
                out.results[0].tuples[0].values,
                out.results[0].tuples[0].sic,
            )
        assert results["on"] == results["off"]
