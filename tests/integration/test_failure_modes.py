"""Failure-injection and edge-case behaviour of the federation.

Overloaded federations routinely hit degenerate situations — silent sources,
nodes with almost no capacity, queries that never produce results, fragments
with no local sources — and the system must keep running and keep its
accounting consistent rather than crash or report SIC values outside [0, 1+ε].
"""

import pytest

from repro.core import StwConfig, make_shedder
from repro.federation import FederatedSystem, FspsNode, Network, UniformLatency
from repro.simulation.config import SimulationConfig
from repro.streaming.engine import LocalEngine
from repro.workloads.complex import make_avg_all_query, make_cov_query


class SilentSource:
    """A source that never emits (e.g. a failed sensor)."""

    def __init__(self, source_id):
        self.source_id = source_id
        self.rate = 10.0

    def generate(self, start, end):
        return []


class FlakySource:
    """A source that only emits during the first half of the run."""

    def __init__(self, source_id, rate=50.0, cutoff=5.0, seed=0):
        from repro.workloads.sources import ValueSource

        self._inner = ValueSource(source_id, rate=rate, seed=seed)
        self.source_id = source_id
        self.rate = rate
        self.cutoff = cutoff

    def generate(self, start, end):
        if start >= self.cutoff:
            return []
        return self._inner.generate(start, end)


def build_system(budget=1e9, shedder="balance-sic"):
    stw = StwConfig(stw_seconds=5.0, slide_seconds=0.25)
    system = FederatedSystem(
        stw_config=stw,
        shedding_interval=0.25,
        network=Network(UniformLatency(0.005)),
    )
    system.add_node(
        FspsNode("node-0", make_shedder(shedder, seed=0), budget, stw_config=stw)
    )
    return system


class TestDegenerateSources:
    def test_silent_source_yields_zero_sic_but_no_crash(self):
        system = build_system()
        query = make_cov_query(query_id="silent", num_fragments=1, rate=20.0, seed=0)
        query.sources[1] = SilentSource(query.sources[1].source_id)
        system.deploy_query(
            query.query_id, query.fragments, query.sources,
            {fid: "node-0" for fid in query.fragments},
        )
        system.run(8.0)
        # The covariance join never matches, so the query result SIC is 0 —
        # a degraded but well-defined outcome.
        assert system.current_sic_per_query()["silent"] == pytest.approx(0.0)

    def test_flaky_source_degrades_gracefully(self):
        system = build_system()
        query = make_avg_all_query(
            query_id="flaky", num_fragments=1, sources_per_fragment=2, rate=40.0, seed=1
        )
        query.sources[0] = FlakySource(query.sources[0].source_id, cutoff=4.0, seed=1)
        system.deploy_query(
            query.query_id, query.fragments, query.sources,
            {fid: "node-0" for fid in query.fragments},
        )
        system.run(12.0)
        final = system.current_sic_per_query()["flaky"]
        # Half of the sources went quiet: the result SIC reflects the loss but
        # stays within bounds.
        assert 0.0 <= final <= 1.1


class TestExtremeCapacity:
    def test_minimal_budget_sheds_almost_everything_but_stays_fair(self):
        config = SimulationConfig(
            duration_seconds=6.0, warmup_seconds=2.0, stw_seconds=4.0,
            capacity_fraction=0.05, seed=0,
        )
        engine = LocalEngine(config)
        engine.add_queries(
            make_cov_query(query_id=f"tiny-{i}", num_fragments=1, rate=80.0, seed=i)
            for i in range(4)
        )
        result = engine.run()
        assert result.shed_fraction > 0.85
        assert result.jains_index > 0.8
        assert all(0.0 <= v <= 1.1 for v in result.per_query_sic.values())

    def test_idle_node_without_fragments_is_harmless(self):
        system = build_system()
        system.add_node(
            FspsNode("idle-node", make_shedder("balance-sic"), 10.0,
                     stw_config=StwConfig(5.0, 0.25))
        )
        query = make_cov_query(query_id="only", num_fragments=1, rate=40.0, seed=2)
        system.deploy_query(
            query.query_id, query.fragments, query.sources,
            {fid: "node-0" for fid in query.fragments},
        )
        system.run(6.0)
        idle = system.nodes["idle-node"]
        assert idle.stats.received_tuples == 0
        assert idle.stats.shed_tuples == 0


class TestSicBounds:
    def test_result_sic_never_significantly_exceeds_one(self):
        system = build_system(shedder="none")
        for i in range(3):
            query = make_avg_all_query(
                query_id=f"bound-{i}", num_fragments=1, sources_per_fragment=2,
                rate=60.0, seed=i,
            )
            system.deploy_query(
                query.query_id, query.fragments, query.sources,
                {fid: "node-0" for fid in query.fragments},
            )
        system.run(15.0)
        for coordinator in system.coordinators.all():
            for _, value in coordinator.tracker.history:
                assert value <= 1.15
