"""Differential tests: live fragment migration is invisible to query results.

The acceptance bar for the checkpoint/restore subsystem is the same oracle
pattern as PR 1-3: a seeded event-runtime run with a mid-run
``migrate_fragment`` must yield *identical* per-query results to the same run
without the migration — same result-SIC series, same result payloads — on
LAN and zero-latency networks.  The migration moves state exclusively
through the serialised :class:`~repro.state.FragmentCheckpoint` envelope, so
these tests also prove snapshot/restore fidelity end to end.

The scenarios run the nodes below capacity: shedding decisions depend on
node-local history (cost-model moving average, shedder RNG) that legitimately
differs between hosts, so under overload migration is *conservative* (no
tuple lost or duplicated — asserted separately) but not bit-identical.
"""

import pytest

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.experiments.common import build_federation
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime
from repro.simulation.config import SimulationConfig
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.generators import WorkloadSpec, generate_complex_workload

INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


def make_node(node_id, budget=500.0, seed=0):
    return FspsNode(
        node_id=node_id,
        shedder=make_shedder("balance-sic", seed=seed),
        budget_per_interval=budget,
        stw_config=STW,
    )


def make_local_system(latency, num_nodes=2, queries=2, budget=500.0):
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(UniformLatency(latency)),
        retain_results=True,
    )
    for i in range(num_nodes):
        system.add_node(make_node(f"node-{i}", budget=budget, seed=i))
    for i in range(queries):
        query = make_aggregate_query(
            ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
        )
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fid: f"node-{i % num_nodes}" for fid in query.fragments},
        )
    return system


def query_results(system):
    """Per-query observable outcome: SIC series, counts, payloads."""
    out = {}
    for coordinator in system.coordinators.all():
        out[coordinator.query_id] = (
            coordinator.tracker.history,
            coordinator.result_tuples,
            list(coordinator.result_values),
        )
    return out


class TestGracefulMigrationIdentity:
    @pytest.mark.parametrize("latency", [0.005, 0.0], ids=["lan", "zero"])
    def test_single_fragment_migration_is_result_identical(self, latency):
        baseline = make_local_system(latency)
        runtime = EventRuntime(baseline)
        runtime.run(8.0)
        runtime.close()

        migrated = make_local_system(latency)
        runtime = EventRuntime(migrated)
        runtime.run(4.0)
        fragment_id = next(iter(migrated.queries["q0"].fragments))
        report = runtime.migrate_fragment(fragment_id, "node-1")
        assert report.source_node == "node-0"
        assert report.target_node == "node-1"
        runtime.run(4.0)
        runtime.close()

        assert query_results(migrated) == query_results(baseline)
        # All generated tuples arrived somewhere (some via the forwarding
        # pointer); none were lost to the move.
        assert migrated.total_received_tuples() == baseline.total_received_tuples()

    @pytest.mark.parametrize("latency", [0.005, 0.0], ids=["lan", "zero"])
    def test_multi_fragment_query_migration_is_result_identical(self, latency):
        def build():
            config = SimulationConfig(
                duration_seconds=6.0,
                warmup_seconds=0.0,
                stw_seconds=4.0,
                capacity_fraction=20.0,  # generously under capacity
                network_latency_seconds=latency,
                retain_result_values=True,
                seed=5,
            )
            spec = WorkloadSpec(
                num_queries=4,
                fragments_per_query=2,
                kinds=("avg-all", "cov"),
                source_rate=30.0,
                seed=5,
            )
            return build_federation(
                generate_complex_workload(spec), num_nodes=3, config=config
            )

        baseline = build()
        runtime = EventRuntime(baseline)
        runtime.run(6.0)
        runtime.close()

        migrated = build()
        runtime = EventRuntime(migrated)
        runtime.run(3.0)
        # Move one upstream fragment of a chained query to a different node.
        fragment_id = sorted(migrated.placement)[0]
        old_host = migrated.placement[fragment_id]
        target = next(
            node_id
            for node_id in sorted(migrated.nodes)
            if node_id != old_host
        )
        runtime.migrate_fragment(fragment_id, target)
        runtime.run(3.0)
        runtime.close()

        assert query_results(migrated) == query_results(baseline)

    def test_adoption_does_not_clobber_established_host_state(self):
        # When the target already hosts a sibling fragment of the same
        # query, its own (at least as fresh) view of the query must survive
        # the adoption — only a first-time host takes the envelope's
        # context.
        config = SimulationConfig(
            duration_seconds=4.0,
            warmup_seconds=0.0,
            capacity_fraction=20.0,
            seed=2,
        )
        spec = WorkloadSpec(
            num_queries=2,
            fragments_per_query=2,
            kinds=("avg-all",),
            source_rate=30.0,
            seed=2,
        )
        system = build_federation(
            generate_complex_workload(spec), num_nodes=2, config=config
        )
        runtime = EventRuntime(system)
        runtime.run(2.0)
        # Find a query whose two fragments sit on different nodes.
        query_id, query = next(
            (qid, q)
            for qid, q in system.queries.items()
            if len({system.placement[f] for f in q.fragments}) == 2
        )
        moving = next(iter(query.fragments))
        source_host = system.placement[moving]
        target_host = next(
            n for n in system.nodes if n != source_host
        )
        system.nodes[source_host].on_sic_update(query_id, 0.111)
        system.nodes[target_host].on_sic_update(query_id, 0.999)
        runtime.migrate_fragment(moving, target_host)
        # The established host keeps its own reported value; the envelope's
        # stale 0.111 from the departing host is ignored.
        assert system.nodes[target_host]._reported_sic[query_id] == 0.999
        runtime.close()

    def test_migration_conserves_pane_sic_through_the_envelope(self):
        system = make_local_system(0.005)
        runtime = EventRuntime(system)
        runtime.run(2.1)
        fragment_id = next(iter(system.queries["q0"].fragments))
        fragment = system.queries["q0"].fragments[fragment_id]
        node = system.nodes["node-0"]
        before_sic = fragment.pending_sic() + sum(
            b.sic for b in node._input_buffer if b.query_id == "q0"
        )
        before_tuples = fragment.pending_tuples()
        report = runtime.migrate_fragment(fragment_id, "node-1")
        # The envelope accounts exactly what the fragment held...
        assert report.state_sic == before_sic
        assert report.state_tuples >= before_tuples
        # ...and the adopted fragment holds it again, bit for bit.
        after_sic = fragment.pending_sic() + sum(
            b.sic
            for b in system.nodes["node-1"]._input_buffer
            if b.query_id == "q0"
        )
        assert after_sic == before_sic
        runtime.close()


class TestMigrationUnderOverload:
    def build(self, budget=7.0):
        # rate 80 t/s (~20 tuples and ~12 cost units per interval) against a
        # 7-unit budget: permanently overloaded.
        return make_local_system(0.005, num_nodes=3, queries=3, budget=budget)

    def test_overloaded_migration_conserves_tuples(self):
        system = self.build()
        runtime = EventRuntime(system)
        runtime.run(4.0)
        fragment_id = next(iter(system.queries["q0"].fragments))
        runtime.migrate_fragment(fragment_id, "node-2")
        runtime.run(4.0)
        runtime.close()
        received = system.total_received_tuples()
        kept = sum(n.stats.kept_tuples for n in system.nodes.values())
        shed = system.total_shed_tuples()
        buffered = sum(n.input_buffer_size() for n in system.nodes.values())
        # Every received tuple was either processed, shed or is still
        # buffered — the migration neither lost nor duplicated any.
        assert received == kept + shed + buffered
        assert shed > 0
        sic = system.current_sic_per_query()
        assert all(value > 0.0 for value in sic.values())

    def test_remove_node_on_loaded_node_succeeds_via_migration(self):
        system = self.build()
        runtime = EventRuntime(system)
        runtime.run(4.0)
        hosted = sorted(system.nodes["node-0"].fragments)
        assert hosted  # the node is actually loaded
        removed = runtime.remove_node("node-0")
        assert not removed.fragments
        for fragment_id in hosted:
            assert system.placement[fragment_id] in ("node-1", "node-2")
        runtime.run(4.0)
        runtime.close()
        # The decommissioned node's queries keep producing results.
        sic = system.current_sic_per_query()
        assert all(value > 0.0 for value in sic.values())


class TestFailRejoinCycle:
    def test_rejoin_restores_from_coordinator_checkpoints(self):
        system = make_local_system(0.005)
        runtime = EventRuntime(system, checkpoint_interval=INTERVAL)
        runtime.run(4.0)
        steady = system.current_sic_per_query()
        assert steady["q1"] > 0.5
        runtime.fail_node("node-1")
        # One full STW after the failure, the lost query's SIC has decayed
        # to zero.
        runtime.run(5.0)
        assert system.current_sic_per_query()["q1"] == 0.0
        report = runtime.rejoin_node(make_node("node-1", seed=9))
        assert report.restored_fragments
        assert not report.fragments_without_checkpoint
        runtime.run(6.0)
        runtime.close()
        recovered = system.current_sic_per_query()
        # The lost query recovered to the same steady-state SIC the
        # untouched survivor reports at the same instant.
        assert recovered["q1"] > 0.5
        assert recovered["q1"] == pytest.approx(recovered["q0"], abs=0.05)

    def test_rejoin_without_checkpoints_restarts_empty_with_loss_accounting(self):
        system = make_local_system(0.005)
        runtime = EventRuntime(system)  # no periodic checkpoints
        runtime.run(4.0)
        lost_fragment = next(iter(system.queries["q1"].fragments))
        fragment = system.queries["q1"].fragments[lost_fragment]
        failed = runtime.fail_node("node-1")
        # Crash-time state: the fragment's window plus whatever the node
        # still had buffered for it — all of it is lost without checkpoints.
        crash_tuples = fragment.pending_tuples() + failed.input_buffer_size()
        report = runtime.rejoin_node(make_node("node-1", seed=9))
        assert report.fragments_without_checkpoint == [lost_fragment]
        assert report.restored_fragments == []
        assert report.lost_tuples == crash_tuples
        assert fragment.pending_tuples() == 0
        runtime.run(4.0)
        runtime.close()
        assert system.current_sic_per_query()["q1"] > 0.0


class TestCoordinatorFailover:
    def test_failover_restores_sic_dissemination(self):
        system = make_local_system(0.005)
        runtime = EventRuntime(system, checkpoint_interval=INTERVAL)
        runtime.run(4.0)
        before = system.coordinators.coordinator("q0")
        failed = runtime.fail_coordinator("q0")
        assert failed is before
        promoted = system.coordinators.coordinator("q0")
        assert promoted is not failed
        # The standby restored the tracker state and knows the hosting nodes.
        assert promoted.hosting_nodes == {"node-0"}
        assert promoted.result_tuples > 0
        runtime.run(4.0)
        runtime.close()
        assert system.current_sic_per_query()["q0"] > 0.5
        assert promoted.updates_sent > 0

    def test_failover_without_standby_starts_blank(self):
        system = make_local_system(0.005)
        runtime = EventRuntime(system)  # no checkpoints -> no standby state
        runtime.run(2.0)
        failed = runtime.fail_coordinator("q0")
        promoted = system.coordinators.coordinator("q0")
        assert promoted.result_tuples == 0
        assert failed.result_tuples > 0
        # Hosting set still rebuilt from placement; the query recovers.
        assert promoted.hosting_nodes == {"node-0"}
        runtime.run(4.0)
        runtime.close()
        assert system.current_sic_per_query()["q0"] > 0.0
