"""End-to-end differential tests: columnar tick pipeline ≡ per-tuple pipeline.

The acceptance bar for the columnar fast path is *result identity*: for
equal seeds a run with ``columnar=True`` must reproduce the per-tuple run's
``RunResult`` — per-query SIC values, result payloads, shed/kept counters
and network accounting — exactly, not approximately.  Covered scenarios:

* the aggregate workload on a single overloaded node (LocalEngine);
* the complex workload (AVG-all tree, TOP-5 chain, COV) spread over a
  multi-node federation, which exercises inter-fragment columnar routing,
  unions, joins, filters and the per-tuple fallbacks;
* bursty sources (the §7.4 burstiness model) with fractional rates.
"""


from repro.core.shedding import BalanceSicShedder
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.simulation.config import SimulationConfig
from repro.streaming.engine import LocalEngine
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.complex import make_avg_all_query, make_cov_query, make_top5_query


def run_local(columnar, bursty=False):
    config = SimulationConfig(
        duration_seconds=4.0,
        warmup_seconds=1.0,
        capacity_fraction=0.5,
        columnar=columnar,
        retain_result_values=True,
        seed=0,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    for i in range(9):
        query = make_aggregate_query(
            kinds[i % 3], query_id=f"q{i}", rate=173.3, seed=i
        )
        if bursty:
            from repro.workloads.sources import BurstySource

            query.sources = [BurstySource(s, seed=i) for s in query.sources]
        engine.add_query(query)
    return engine.run()


def run_federated(columnar):
    config = SimulationConfig(columnar=columnar, seed=0)
    system = FederatedSystem(
        stw_config=config.stw_config(),
        shedding_interval=config.shedding_interval,
        network=Network(UniformLatency(0.005)),
        columnar=columnar,
    )
    for node_id in ("n0", "n1"):
        system.add_node(
            FspsNode(
                node_id=node_id,
                shedder=BalanceSicShedder(seed=0),
                budget_per_interval=600.0,
                stw_config=config.stw_config(),
            )
        )
    queries = [
        make_avg_all_query(query_id="avg-all", num_fragments=2, rate=80.0, seed=1),
        make_top5_query(query_id="top5", num_fragments=2, rate=25.0, seed=2),
        make_cov_query(query_id="cov", num_fragments=2, rate=40.0, seed=3),
    ]
    nodes = ("n0", "n1")
    for query in queries:
        placement = {
            fragment_id: nodes[i % 2]
            for i, fragment_id in enumerate(query.fragments)
        }
        system.deploy_query(
            query_id=query.query_id,
            fragments=query.fragments,
            sources=query.sources,
            placement=placement,
        )
    system.run(8.0)
    return system


class TestLocalEngineIdentity:
    def test_aggregate_workload_identical(self):
        columnar = run_local(True)
        reference = run_local(False)
        assert columnar.per_query_sic == reference.per_query_sic
        assert columnar.sic_time_series == reference.sic_time_series
        assert columnar.result_values == reference.result_values
        for c, r in zip(columnar.node_summaries, reference.node_summaries):
            assert c.received_tuples == r.received_tuples
            assert c.kept_tuples == r.kept_tuples
            assert c.shed_tuples == r.shed_tuples
            assert c.overloaded_ticks == r.overloaded_ticks
        assert columnar.messages_sent == reference.messages_sent
        assert columnar.bytes_sent == reference.bytes_sent

    def test_bursty_sources_identical(self):
        columnar = run_local(True, bursty=True)
        reference = run_local(False, bursty=True)
        assert columnar.per_query_sic == reference.per_query_sic
        assert columnar.result_values == reference.result_values

    def test_some_shedding_actually_happened(self):
        result = run_local(True)
        assert any(s.shed_tuples > 0 for s in result.node_summaries)


class TestFederatedIdentity:
    def test_complex_workload_multinode_identical(self):
        columnar = run_federated(True)
        reference = run_federated(False)
        assert columnar.mean_sic_per_query() == reference.mean_sic_per_query()
        assert (
            columnar.total_received_tuples() == reference.total_received_tuples()
        )
        assert columnar.total_shed_tuples() == reference.total_shed_tuples()
        assert (
            columnar.network.bytes_sent == reference.network.bytes_sent
        )
        # Sanity: the complex queries actually produced results.
        sic = columnar.mean_sic_per_query()
        assert set(sic) == {"avg-all", "top5", "cov"}
        assert all(value > 0 for value in sic.values())
