"""End-to-end differential tests: columnar tick pipeline ≡ per-tuple pipeline.

The acceptance bar for the columnar fast path is *result identity*: for
equal seeds a run with ``columnar=True`` must reproduce the per-tuple run's
``RunResult`` — per-query SIC values, result payloads, shed/kept counters
and network accounting — exactly, not approximately.  Covered scenarios:

* the aggregate workload on a single overloaded node (LocalEngine);
* the complex workload (AVG-all tree, TOP-5 chain, COV) spread over a
  multi-node federation, which exercises inter-fragment columnar routing,
  unions, joins, filters and the per-tuple fallbacks;
* bursty sources (the §7.4 burstiness model) with fractional rates.

Columnar v2 extends the oracle chain with the backend axis: for equal seeds
the NumPy-backed pipeline must reproduce the list-backed pipeline (and hence
the per-tuple pipeline) exactly — asserted across LAN/WAN/zero-latency
networks, bursty sources and a live mid-run fragment migration.
"""

import pytest

from repro.core.shedding import BalanceSicShedder, make_shedder
from repro.core.stw import StwConfig
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime
from repro.simulation.config import SimulationConfig
from repro.streaming.engine import LocalEngine
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.complex import make_avg_all_query, make_cov_query, make_top5_query


def run_local(columnar, bursty=False):
    config = SimulationConfig(
        duration_seconds=4.0,
        warmup_seconds=1.0,
        capacity_fraction=0.5,
        columnar=columnar,
        retain_result_values=True,
        seed=0,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    for i in range(9):
        query = make_aggregate_query(
            kinds[i % 3], query_id=f"q{i}", rate=173.3, seed=i
        )
        if bursty:
            from repro.workloads.sources import BurstySource

            query.sources = [BurstySource(s, seed=i) for s in query.sources]
        engine.add_query(query)
    return engine.run()


def run_federated(columnar):
    config = SimulationConfig(columnar=columnar, seed=0)
    system = FederatedSystem(
        stw_config=config.stw_config(),
        shedding_interval=config.shedding_interval,
        network=Network(UniformLatency(0.005)),
        columnar=columnar,
    )
    for node_id in ("n0", "n1"):
        system.add_node(
            FspsNode(
                node_id=node_id,
                shedder=BalanceSicShedder(seed=0),
                budget_per_interval=600.0,
                stw_config=config.stw_config(),
            )
        )
    queries = [
        make_avg_all_query(query_id="avg-all", num_fragments=2, rate=80.0, seed=1),
        make_top5_query(query_id="top5", num_fragments=2, rate=25.0, seed=2),
        make_cov_query(query_id="cov", num_fragments=2, rate=40.0, seed=3),
    ]
    nodes = ("n0", "n1")
    for query in queries:
        placement = {
            fragment_id: nodes[i % 2]
            for i, fragment_id in enumerate(query.fragments)
        }
        system.deploy_query(
            query_id=query.query_id,
            fragments=query.fragments,
            sources=query.sources,
            placement=placement,
        )
    system.run(8.0)
    return system


class TestLocalEngineIdentity:
    def test_aggregate_workload_identical(self):
        columnar = run_local(True)
        reference = run_local(False)
        assert columnar.per_query_sic == reference.per_query_sic
        assert columnar.sic_time_series == reference.sic_time_series
        assert columnar.result_values == reference.result_values
        for c, r in zip(columnar.node_summaries, reference.node_summaries):
            assert c.received_tuples == r.received_tuples
            assert c.kept_tuples == r.kept_tuples
            assert c.shed_tuples == r.shed_tuples
            assert c.overloaded_ticks == r.overloaded_ticks
        assert columnar.messages_sent == reference.messages_sent
        assert columnar.bytes_sent == reference.bytes_sent

    def test_bursty_sources_identical(self):
        columnar = run_local(True, bursty=True)
        reference = run_local(False, bursty=True)
        assert columnar.per_query_sic == reference.per_query_sic
        assert columnar.result_values == reference.result_values

    def test_some_shedding_actually_happened(self):
        result = run_local(True)
        assert any(s.shed_tuples > 0 for s in result.node_summaries)


def run_local_backend(backend, latency=0.005, bursty=False):
    config = SimulationConfig(
        duration_seconds=4.0,
        warmup_seconds=1.0,
        capacity_fraction=0.5,
        columnar=True,
        columnar_backend=backend,
        network_latency_seconds=latency,
        retain_result_values=True,
        seed=0,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    for i in range(9):
        query = make_aggregate_query(
            kinds[i % 3], query_id=f"q{i}", rate=173.3, seed=i
        )
        if bursty:
            from repro.workloads.sources import BurstySource

            query.sources = [BurstySource(s, seed=i) for s in query.sources]
        engine.add_query(query)
    return engine.run()


def assert_runs_identical(a, b):
    assert a.per_query_sic == b.per_query_sic
    assert a.sic_time_series == b.sic_time_series
    assert a.result_values == b.result_values
    for sa, sb in zip(a.node_summaries, b.node_summaries):
        assert sa.received_tuples == sb.received_tuples
        assert sa.kept_tuples == sb.kept_tuples
        assert sa.shed_tuples == sb.shed_tuples
        assert sa.overloaded_ticks == sb.overloaded_ticks
    assert a.messages_sent == b.messages_sent
    assert a.bytes_sent == b.bytes_sent


class TestBackendIdentity:
    """Columnar v2: numpy-backed runs ≡ list-backed runs, bit for bit."""

    @pytest.mark.parametrize(
        "latency", [0.005, 0.075, 0.0], ids=["lan", "wan", "zero"]
    )
    def test_aggregate_workload_identical_across_backends(self, latency):
        numpy_run = run_local_backend("numpy", latency=latency)
        list_run = run_local_backend("list", latency=latency)
        assert_runs_identical(numpy_run, list_run)

    def test_bursty_sources_identical_across_backends(self):
        numpy_run = run_local_backend("numpy", bursty=True)
        list_run = run_local_backend("list", bursty=True)
        assert numpy_run.per_query_sic == list_run.per_query_sic
        assert numpy_run.result_values == list_run.result_values

    def test_numpy_backend_matches_per_tuple_pipeline(self):
        """Oracle chain closes: numpy columnar ≡ seed per-tuple pipeline."""
        numpy_run = run_local_backend("numpy")
        reference = run_local(False)
        assert numpy_run.per_query_sic == reference.per_query_sic
        assert numpy_run.result_values == reference.result_values

    def test_complex_workload_identical_across_backends(self):
        from repro.core.columns import use_backend

        with use_backend("numpy"):
            numpy_system = run_federated(True)
        with use_backend("list"):
            list_system = run_federated(True)
        assert (
            numpy_system.mean_sic_per_query() == list_system.mean_sic_per_query()
        )
        assert (
            numpy_system.total_received_tuples()
            == list_system.total_received_tuples()
        )
        assert (
            numpy_system.total_shed_tuples() == list_system.total_shed_tuples()
        )
        assert (
            numpy_system.network.bytes_sent == list_system.network.bytes_sent
        )


class TestBackendMigrationIdentity:
    """A live mid-run migration under the numpy backend stays invisible and
    matches the list backend run for run (array-backed window/estimator
    state travels through FragmentCheckpoint unchanged)."""

    INTERVAL = 0.25
    STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)

    def build_system(self, latency=0.005):
        system = FederatedSystem(
            stw_config=self.STW,
            shedding_interval=self.INTERVAL,
            network=Network(UniformLatency(latency)),
            retain_results=True,
        )
        for i in range(2):
            system.add_node(
                FspsNode(
                    node_id=f"node-{i}",
                    shedder=make_shedder("balance-sic", seed=i),
                    budget_per_interval=500.0,
                    stw_config=self.STW,
                )
            )
        for i in range(2):
            query = make_aggregate_query(
                ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
            )
            system.deploy_query(
                query.query_id,
                query.fragments,
                query.sources,
                {fid: f"node-{i % 2}" for fid in query.fragments},
            )
        return system

    def run_with_migration(self, backend):
        from repro.core.columns import use_backend

        with use_backend(backend):
            system = self.build_system()
            runtime = EventRuntime(system)
            runtime.run(4.0)
            fragment_id = next(iter(system.queries["q0"].fragments))
            runtime.migrate_fragment(fragment_id, "node-1")
            runtime.run(4.0)
            runtime.close()
            return {
                coordinator.query_id: (
                    list(coordinator.tracker.history),
                    coordinator.result_tuples,
                    list(coordinator.result_values),
                )
                for coordinator in system.coordinators.all()
            }

    def test_migration_mid_run_identical_across_backends(self):
        assert self.run_with_migration("numpy") == self.run_with_migration(
            "list"
        )


class TestFederatedIdentity:
    def test_complex_workload_multinode_identical(self):
        columnar = run_federated(True)
        reference = run_federated(False)
        assert columnar.mean_sic_per_query() == reference.mean_sic_per_query()
        assert (
            columnar.total_received_tuples() == reference.total_received_tuples()
        )
        assert columnar.total_shed_tuples() == reference.total_shed_tuples()
        assert (
            columnar.network.bytes_sent == reference.network.bytes_sent
        )
        # Sanity: the complex queries actually produced results.
        sic = columnar.mean_sic_per_query()
        assert set(sic) == {"avg-all", "top5", "cov"}
        assert all(value > 0 for value in sic.values())
