"""Soak: exactly-once results and flat memory across repeated crash cycles.

The robustness acceptance bar for the exactly-once PR, as tests:

* ``TestSoakCycles`` drives the full soak scenario — 20 back-to-back
  fail/rejoin cycles with a coordinator failover every third — and asserts
  the composed guarantees: the result ledger closes after *every* cycle,
  coordinator watermarks only ever advance (outside a failover's deliberate
  rollback), the checkpoint/standby stores do not accumulate, tracked
  bounded memory stays flat and backpressure paces the sources without the
  bounded ingress queues ever overflowing.
* ``TestExactlyOnceRecovery`` isolates the two recovery shapes: a crash
  fully covered by a checkpoint is *bit-exact invisible* to query results,
  and a crash with a checkpoint gap closes the ledger exactly (the replay
  is deduplicated, the gap is accounted as lost-to-crash, nothing is
  unaccounted).
* ``TestLedgerProperties`` pins the dedup algebra of
  :class:`~repro.state.ledger.ResultLedger` under hypothesis-generated
  replay patterns: observing any emission stream twice delivers nothing
  new, and the lane identities hold at every prefix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.experiments.soak import (
    FAILOVER_EVERY,
    build_soak_federation,
    run_cycle,
)
from repro.experiments.testbeds import scaled_config
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, ReliabilityConfig, UniformLatency
from repro.federation.node import FspsNode
from repro.perf.memwatch import MemoryWatch
from repro.runtime import EventRuntime
from repro.state.ledger import DEDUPLICATE, DELIVER, ResultLedger
from repro.workloads.aggregate import make_aggregate_query

SOAK_CYCLES = 20

INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


# --------------------------------------------------------------------- soak
@pytest.fixture(scope="module")
def soak_run():
    """One 20-cycle soak with per-cycle accounting + watermark snapshots."""
    base = scaled_config("small", seed=0)
    system, runtime, node_factory = build_soak_federation(base, rate=80.0, seed=0)
    memwatch = MemoryWatch()
    runtime.run(base.warmup_seconds)
    memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)

    rows = []
    watermark_history = []  # per cycle: {query_id: {(fid, epoch): acked}}
    store_sizes = []
    for cycle in range(SOAK_CYCLES):
        rows.append(run_cycle(system, runtime, node_factory, cycle))
        memwatch.sample(system, now=runtime.now, scheduler=runtime.scheduler)
        watermark_history.append(
            {
                c.query_id: c.ledger.watermarks()
                for c in system.coordinators.all()
                if c.ledger is not None
            }
        )
        store_sizes.append(
            (
                system.coordinators.checkpoint_store_size(),
                system.coordinators.standby_store_size(),
                system.epoch_tail_count(),
            )
        )
    system.drain_network()
    final = system.result_accounting_report()
    memwatch.sample(system, now=system.now, scheduler=runtime.scheduler)
    runtime.close()
    return {
        "system": system,
        "rows": rows,
        "watermarks": watermark_history,
        "store_sizes": store_sizes,
        "memwatch": memwatch,
        "final": final,
    }


class TestSoakCycles:
    def test_every_cycle_recovers_and_closes_the_ledger(self, soak_run):
        assert len(soak_run["rows"]) == SOAK_CYCLES
        for row in soak_run["rows"]:
            # The crashed node's fragments came back from checkpoints...
            assert row["restored_fragments"] > 0
            # ...and the tuple-level identity held at the cycle boundary,
            # mid-stream, with no drain.
            assert row["unaccounted_tuples"] == 0
            assert 0.0 <= row["jains_index"] <= 1.0

    def test_final_ledger_closes_and_replays_were_exercised(self, soak_run):
        final = soak_run["final"]
        assert final["enabled"] is True
        assert final["unaccounted_tuples"] == 0
        assert final["lane_problems"] == []
        # The coprime crash/checkpoint cadences guarantee real checkpoint
        # gaps: the soak is only evidence of exactly-once if the dedup and
        # loss-accounting paths actually ran.
        assert final["deduped_tuples"] > 0
        assert final["lost_to_crash_tuples"] > 0

    def test_watermarks_monotonic_outside_failover_rollback(self, soak_run):
        history = soak_run["watermarks"]
        for cycle in range(1, SOAK_CYCLES):
            failed_query = soak_run["rows"][cycle]["failover"]
            for query_id, lanes in history[cycle - 1].items():
                if query_id == failed_query:
                    # Failover restores the standby's ledger snapshot: lanes
                    # legitimately roll back together with tracker state.
                    continue
                current = history[cycle].get(query_id, {})
                for lane_key, acked in lanes.items():
                    assert current.get(lane_key, 0) >= acked, (
                        f"cycle {cycle}: {query_id} lane {lane_key} watermark "
                        f"went backwards without a failover"
                    )

    def test_stores_do_not_accumulate(self, soak_run):
        system = soak_run["system"]
        fragments = sum(len(q.fragments) for q in system.queries.values())
        queries = len(system.queries)
        for checkpoints, standbys, tails in soak_run["store_sizes"]:
            # Rejoin consumes the restored envelopes and purges rejoined
            # nodes' stale ones, so the store tracks the live deployment
            # instead of accumulating one envelope per cycle.
            assert checkpoints <= fragments
            assert standbys <= queries
            assert tails <= fragments

    def test_tracked_memory_is_flat(self, soak_run):
        growth = soak_run["memwatch"].growth_fraction(
            skip_initial=2, window=2 * FAILOVER_EVERY
        )
        assert growth is not None
        assert abs(growth) <= 0.05, (
            f"bounded memory drifted {growth * 100:.1f}% over "
            f"{SOAK_CYCLES} fail/rejoin cycles"
        )

    def test_backpressure_paces_before_overflowing(self, soak_run):
        system = soak_run["system"]
        paced = system.total_paced_tuples()
        engagements = sum(
            n.stats.backpressure_engagements for n in system.nodes.values()
        )
        overflow = sum(
            n.stats.ingress_overflow_tuples for n in system.nodes.values()
        )
        assert paced > 0, "the bounded ingress never pushed back on sources"
        assert engagements > 0
        assert overflow == 0, (
            f"{overflow} tuples hit the hard ingress cap — pacing must "
            f"engage before the last line of defence"
        )


# --------------------------------------------------- targeted recovery shapes
def make_accounted_system(num_nodes=2, queries=2, budget=500.0, latency=0.005):
    """Under-capacity federation with reliable delivery + result accounting.

    Below capacity the shedder RNG is never consulted, so a rejoined node
    (fresh shedder, same seed) behaves identically to its predecessor and
    checkpoint coverage is the *only* variable between a faulted run and
    its control — the precondition for the bit-exactness assertion.
    """
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(
            UniformLatency(latency), reliability=ReliabilityConfig()
        ),
        retain_results=True,
        result_accounting=True,
    )

    def node_factory(node_id):
        index = int(node_id.rsplit("-", 1)[1])
        return FspsNode(
            node_id=node_id,
            shedder=make_shedder("balance-sic", seed=index),
            budget_per_interval=budget,
            stw_config=STW,
        )

    for i in range(num_nodes):
        system.add_node(node_factory(f"node-{i}"))
    for i in range(queries):
        query = make_aggregate_query(
            ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
        )
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fid: f"node-{i % num_nodes}" for fid in query.fragments},
        )
    return system, node_factory


def query_results(system):
    out = {}
    for coordinator in system.coordinators.all():
        out[coordinator.query_id] = (
            coordinator.tracker.history,
            coordinator.result_tuples,
            list(coordinator.result_values),
        )
    return out


class TestExactlyOnceRecovery:
    def test_covered_crash_is_bit_exact_invisible(self):
        # Control: no faults.
        baseline, _ = make_accounted_system()
        runtime = EventRuntime(baseline)
        runtime.run(8.0)
        baseline.drain_network()
        runtime.close()

        # Faulted: checkpoint at 4 s, then crash + rejoin node-0 at the same
        # instant.  The checkpoint covers everything up to the crash (zero
        # gap), so restore must reproduce the control run exactly — same SIC
        # history, same result payloads, nothing deduplicated, nothing lost.
        faulted, node_factory = make_accounted_system()
        runtime = EventRuntime(faulted)
        runtime.run(4.0)
        runtime.checkpoint_now()
        runtime.fail_node("node-0")
        report = runtime.rejoin_node(node_factory("node-0"))
        assert report.restored_fragments
        assert not report.fragments_without_checkpoint
        assert report.lost_tuples == 0
        runtime.run(4.0)
        faulted.drain_network()
        runtime.close()

        assert query_results(faulted) == query_results(baseline)
        accounting = faulted.result_accounting_report()
        assert accounting["unaccounted_tuples"] == 0
        assert accounting["deduped_tuples"] == 0
        assert accounting["lost_to_crash_tuples"] == 0

    def test_checkpoint_gap_is_deduplicated_and_accounted(self):
        # The checkpoint at 4 s goes stale: the fragments keep emitting for
        # 1 s before the crash, so the restore rolls their output watermark
        # back below sequence numbers the coordinator already acknowledged.
        # The replayed batches must be deduplicated (or, if their inputs
        # died in the crashed buffer, accounted as lost) — and the identity
        # must close with nothing unaccounted either way.
        system, node_factory = make_accounted_system()
        runtime = EventRuntime(system)
        runtime.run(4.0)
        runtime.checkpoint_now()
        runtime.run(1.0)
        runtime.fail_node("node-0")
        runtime.run(0.5)
        report = runtime.rejoin_node(node_factory("node-0"))
        assert report.restored_fragments
        runtime.run(3.0)
        system.drain_network()
        runtime.close()

        accounting = system.result_accounting_report()
        assert accounting["deduped_tuples"] > 0, (
            "a stale checkpoint must make the restored fragments replay "
            "already-delivered output"
        )
        assert accounting["unaccounted_tuples"] == 0
        assert accounting["lane_problems"] == []


# ----------------------------------------------------------- ledger algebra
def replay_streams():
    """Emission streams with crash-replay shape: advances and rollbacks.

    Each element ``(rollback, advance)`` models one fragment incarnation:
    the emitter's seq counter rolls back by ``rollback`` (a checkpoint
    restore) and then emits ``advance`` more batches.  Seqs can also jump
    forward (emissions lost with a crash before arrival) via rollbacks of 0
    with gaps introduced by a lost prefix — covered by starting advances
    past the previous watermark.
    """
    return st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=8
    )


def materialize(segments):
    """Turn (rollback, advance) segments into the emitted seq stream."""
    seqs = []
    head = 0
    for rollback, advance in segments:
        head = max(0, head - rollback)
        for _ in range(advance):
            head += 1
            seqs.append(head)
    return seqs


class TestLedgerProperties:
    @given(replay_streams())
    @settings(max_examples=200, deadline=None)
    def test_lane_identities_hold_at_every_prefix(self, segments):
        seqs = materialize(segments)
        ledger = ResultLedger()
        delivered = deduped = 0
        for seq in seqs:
            verdict = ledger.observe("f", 0, seq, num_tuples=1)
            if verdict == DELIVER:
                delivered += 1
            else:
                assert verdict == DEDUPLICATE
                deduped += 1
            # The identities hold mid-stream, not just at the end.
            summary = ledger.summary()
            assert summary["delivered_batches"] == delivered
            assert summary["deduped_batches"] == deduped
            assert ledger.check_closure() == []
        if seqs:
            assert ledger.acked("f", 0) == max(seqs)
            # Every seq was delivered at most once; the watermark equals
            # delivered + crash-lost gaps.
            assert delivered <= len(set(seqs))
            assert max(seqs) == delivered + ledger.lost_batches

    @given(replay_streams())
    @settings(max_examples=200, deadline=None)
    def test_observing_a_stream_twice_delivers_nothing_new(self, segments):
        seqs = materialize(segments)
        once = ResultLedger()
        for seq in seqs:
            once.observe("f", 0, seq, num_tuples=2)

        twice = ResultLedger()
        for seq in seqs:
            twice.observe("f", 0, seq, num_tuples=2)
        for seq in seqs:
            assert twice.observe("f", 0, seq, num_tuples=2) == DEDUPLICATE
        assert twice.delivered_tuples == once.delivered_tuples
        assert twice.acked("f", 0) == once.acked("f", 0)
        assert twice.lost_batches == once.lost_batches
        assert twice.check_closure() == []

    @given(replay_streams())
    @settings(max_examples=50, deadline=None)
    def test_snapshot_restore_roundtrip(self, segments):
        ledger = ResultLedger()
        for seq in materialize(segments):
            ledger.observe("f", 0, seq, num_tuples=3)
        restored = ResultLedger()
        restored.restore_state(ledger.snapshot_state())
        assert restored.summary() == ledger.summary()
        assert restored.watermarks() == ledger.watermarks()
