"""End-to-end integration tests across the whole system.

These tests exercise the paper's central claims at a small scale:

* perfect processing yields result SIC close to 1 for every query type;
* SIC degrades roughly with the kept fraction under overload;
* BALANCE-SIC converges query SIC values (high Jain's index) and is at least
  as fair as random shedding on skewed multi-node deployments;
* the SIC metric is anti-correlated with result error.
"""

import pytest

from repro.experiments.common import build_federation, config_with
from repro.federation.deployment import RandomPlacement
from repro.metrics.errors import mean_absolute_relative_error
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.streaming.engine import LocalEngine
from repro.workloads.aggregate import make_avg_query, make_count_query
from repro.workloads.complex import make_avg_all_query, make_cov_query, make_top5_query
from repro.workloads.generators import WorkloadSpec, generate_complex_workload


def small_config(**overrides):
    values = dict(
        duration_seconds=8.0,
        warmup_seconds=4.0,
        stw_seconds=6.0,
        shedding_interval=0.25,
        capacity_fraction=0.5,
        seed=0,
    )
    values.update(overrides)
    return SimulationConfig(**values)


class TestPerfectProcessing:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (make_avg_query, {"rate": 80.0}),
            (make_count_query, {"rate": 80.0}),
            (make_avg_all_query, {"num_fragments": 1, "sources_per_fragment": 3, "rate": 40.0}),
            (make_top5_query, {"num_fragments": 1, "machines_per_fragment": 2, "rate": 20.0}),
            (make_cov_query, {"num_fragments": 1, "rate": 80.0}),
        ],
    )
    def test_result_sic_close_to_one_without_shedding(self, builder, kwargs):
        config = small_config(shedder="none", capacity_fraction=1e6,
                              duration_seconds=10.0)
        engine = LocalEngine(config)
        engine.add_query(builder(seed=1, **kwargs))
        result = engine.run()
        for value in result.per_query_sic.values():
            assert 0.75 <= value <= 1.1
        assert result.shed_fraction == 0.0


class TestOverloadDegradation:
    def test_sic_tracks_overload_factor(self):
        measured = {}
        for fraction in (0.25, 0.5, 0.75):
            config = small_config(shedder="balance-sic", capacity_fraction=fraction, seed=3)
            engine = LocalEngine(config)
            engine.add_queries(
                make_avg_query(query_id=f"deg-{fraction}-{i}", rate=80.0, seed=i)
                for i in range(3)
            )
            result = engine.run()
            measured[fraction] = result.mean_sic
        assert measured[0.25] < measured[0.5] < measured[0.75]

    def test_balance_sic_keeps_queries_balanced_under_heavy_overload(self):
        config = small_config(shedder="balance-sic", capacity_fraction=0.2, seed=4)
        engine = LocalEngine(config)
        engine.add_queries(
            make_cov_query(query_id=f"bal-{i}", num_fragments=1, rate=80.0, seed=i)
            for i in range(5)
        )
        result = engine.run()
        assert result.shed_fraction > 0.5
        assert result.jains_index > 0.9


class TestMultiNodeFairness:
    def _run(self, shedder, seed=5):
        spec = WorkloadSpec(
            num_queries=12,
            fragments_per_query=(1, 2, 3),
            source_rate=10.0,
            sources_per_avg_all_fragment=2,
            machines_per_top5_fragment=1,
            seed=seed,
        )
        config = small_config(shedder=shedder, capacity_fraction=0.4, seed=seed)
        queries = generate_complex_workload(spec)
        system = build_federation(
            queries,
            num_nodes=3,
            config=config,
            shedder_name=shedder,
            placement_strategy=RandomPlacement(seed=seed),
            budget_mode="uniform",
        )
        return Simulator(system, config).run()

    def test_balance_sic_is_at_least_as_fair_as_random(self):
        fair = self._run("balance-sic")
        rand = self._run("random")
        assert fair.jains_index >= rand.jains_index - 0.02
        assert fair.jains_index > 0.9

    def test_every_query_receives_some_processing(self):
        result = self._run("balance-sic")
        assert all(v > 0.0 for v in result.per_query_sic.values())


class TestSicErrorCorrelation:
    def test_higher_sic_means_lower_count_error(self):
        points = []
        for fraction in (0.3, 0.8):
            degraded_cfg = small_config(shedder="random", capacity_fraction=fraction,
                                        duration_seconds=10.0, seed=6,
                                        retain_result_values=True)
            perfect_cfg = small_config(shedder="none", capacity_fraction=1e6,
                                       duration_seconds=10.0, seed=6,
                                       retain_result_values=True)
            runs = {}
            for label, cfg in (("degraded", degraded_cfg), ("perfect", perfect_cfg)):
                engine = LocalEngine(cfg)
                engine.add_query(make_count_query(query_id="corr", rate=80.0, seed=6))
                runs[label] = engine.run()
            degraded_series = {
                round(v["_ts"], 3): v["count"]
                for v in runs["degraded"].result_values["corr"]
            }
            perfect_series = {
                round(v["_ts"], 3): v["count"]
                for v in runs["perfect"].result_values["corr"]
            }
            common = sorted(set(degraded_series) & set(perfect_series))
            assert common, "runs should share result windows"
            error = mean_absolute_relative_error(
                [degraded_series[t] for t in common],
                [perfect_series[t] for t in common],
            )
            points.append((runs["degraded"].mean_sic, error))
        (low_sic, high_error), (high_sic, low_error) = points
        assert high_sic > low_sic
        assert low_error < high_error


class TestCoordinatorUpdates:
    def test_updates_add_messages_but_little_data(self):
        config = small_config(shedder="balance-sic", capacity_fraction=0.4, seed=7)
        queries = [
            make_cov_query(query_id=f"upd-{i}", num_fragments=2, rate=40.0, seed=i)
            for i in range(3)
        ]
        with_updates = Simulator(
            build_federation(queries, num_nodes=2, config=config), config
        ).run()
        queries2 = [
            make_cov_query(query_id=f"upd-{i}", num_fragments=2, rate=40.0, seed=i)
            for i in range(3)
        ]
        config_off = config_with(config, enable_sic_updates=False)
        without_updates = Simulator(
            build_federation(queries2, num_nodes=2, config=config_off), config_off
        ).run()
        assert with_updates.messages_sent > without_updates.messages_sent
