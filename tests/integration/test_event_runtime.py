"""Differential tests: discrete-event runtime ≡ lockstep loop.

The acceptance bar for the event runtime is *result identity*: for equal
seeds and homogeneous shedding intervals, a run under
``SimulationConfig(runtime="event")`` must reproduce the lockstep run's
``RunResult`` — per-query SIC series, result payloads, shed/received
counters and network accounting — exactly, not approximately (the same
pattern as the PR 1/PR 2 ``_reference`` oracles).  Covered scenarios:

* the aggregate workload on a single overloaded node (LocalEngine);
* the complex workload (AVG-all tree, TOP-5 chain, COV) spread over a
  multi-node federation, LAN and WAN latency;
* a zero-latency network (exercises the runtime's end-of-instant delivery
  ordering for messages sent during node/coordinator rounds);
* a coordinator update interval that is not a multiple of the shedding
  interval (exercises the due-gated dissemination rounds).

Heterogeneous per-node intervals have no lockstep counterpart; the test here
asserts the semantic contract instead — a node shedding twice as often with
half the per-round budget sees every round, and the run completes.
"""

import pytest

from repro.experiments.common import build_federation
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.streaming.engine import LocalEngine
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.generators import WorkloadSpec, generate_complex_workload


def assert_identical(event, lockstep):
    """Assert two RunResults are byte-for-byte the same run."""
    assert event.per_query_sic == lockstep.per_query_sic
    assert event.sic_time_series == lockstep.sic_time_series
    assert event.result_values == lockstep.result_values
    assert event.messages_sent == lockstep.messages_sent
    assert event.bytes_sent == lockstep.bytes_sent
    assert len(event.node_summaries) == len(lockstep.node_summaries)
    for e, l in zip(event.node_summaries, lockstep.node_summaries):
        assert e.node_id == l.node_id
        assert e.received_tuples == l.received_tuples
        assert e.kept_tuples == l.kept_tuples
        assert e.shed_tuples == l.shed_tuples
        assert e.overloaded_ticks == l.overloaded_ticks
        assert e.ticks == l.ticks


def run_local(runtime):
    config = SimulationConfig(
        duration_seconds=4.0,
        warmup_seconds=1.0,
        capacity_fraction=0.5,
        runtime=runtime,
        retain_result_values=True,
        seed=0,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    for i in range(9):
        engine.add_query(
            make_aggregate_query(kinds[i % 3], query_id=f"q{i}", rate=173.3, seed=i)
        )
    return engine.run()


def run_federated(runtime, latency=0.005, update_interval=None, shedder="balance-sic"):
    config = SimulationConfig(
        duration_seconds=6.0,
        warmup_seconds=2.0,
        stw_seconds=6.0,
        capacity_fraction=0.4,
        network_latency_seconds=latency,
        coordinator_update_interval=update_interval,
        shedder=shedder,
        runtime=runtime,
        retain_result_values=True,
        seed=3,
    )
    spec = WorkloadSpec(
        num_queries=6,
        fragments_per_query=(1, 2),
        kinds=("avg-all", "top5", "cov"),
        source_rate=40.0,
        seed=3,
    )
    queries = generate_complex_workload(spec)
    system = build_federation(queries, num_nodes=3, config=config)
    return Simulator(system, config).run()


class TestLocalEngineIdentity:
    def test_aggregate_workload_identical(self):
        assert_identical(run_local("event"), run_local("lockstep"))

    def test_some_shedding_actually_happened(self):
        result = run_local("event")
        assert any(s.shed_tuples > 0 for s in result.node_summaries)


class TestFederatedIdentity:
    def test_complex_workload_multinode_identical(self):
        event = run_federated("event")
        lockstep = run_federated("lockstep")
        assert_identical(event, lockstep)
        assert event.total_shed_tuples > 0

    def test_wan_latency_identical(self):
        assert_identical(
            run_federated("event", latency=0.05),
            run_federated("lockstep", latency=0.05),
        )

    def test_zero_latency_identical(self):
        # Zero-latency sends during node/coordinator rounds are the corner
        # the POST_DELIVERY priority exists for: the lockstep loop's delivery
        # phase has already passed, so the event runtime must not let a
        # same-instant round observe the freshly-sent message.
        assert_identical(
            run_federated("event", latency=0.0),
            run_federated("lockstep", latency=0.0),
        )

    def test_off_cadence_update_interval_identical(self):
        # 0.6 s updates against 0.25 s shedding rounds: the coordinator
        # rounds are polled at the global cadence and gated by due_for_update
        # under both drivers, so dissemination happens at the same instants.
        assert_identical(
            run_federated("event", update_interval=0.6),
            run_federated("lockstep", update_interval=0.6),
        )

    def test_random_shedder_identical(self):
        # The random shedder consumes its RNG once per invocation: identical
        # results prove the event runtime invokes the shedder at exactly the
        # lockstep instants, in the same node order.
        assert_identical(
            run_federated("event", shedder="random"),
            run_federated("lockstep", shedder="random"),
        )


class TestHeterogeneousIntervals:
    def test_per_node_interval_override_runs_more_rounds(self):
        def build(intervals):
            config = SimulationConfig(
                duration_seconds=4.0,
                warmup_seconds=1.0,
                stw_seconds=5.0,
                capacity_fraction=0.5,
                node_shedding_intervals=intervals,
                seed=1,
            )
            spec = WorkloadSpec(
                num_queries=4,
                fragments_per_query=1,
                kinds=("avg-all",),
                source_rate=40.0,
                seed=1,
            )
            queries = generate_complex_workload(spec)
            system = build_federation(queries, num_nodes=2, config=config)
            return Simulator(system, config).run()

        homogeneous = build({})
        fast_node = build({"node-0": 0.125})
        by_id = {s.node_id: s for s in fast_node.node_summaries}
        base = {s.node_id: s for s in homogeneous.node_summaries}
        # The overridden node runs (about) twice as many rounds in the same
        # simulated time; the untouched node keeps the global cadence.
        assert by_id["node-0"].ticks == 2 * base["node-0"].ticks
        assert by_id["node-1"].ticks == base["node-1"].ticks
        # All generated data still arrives somewhere.
        assert fast_node.total_received_tuples == homogeneous.total_received_tuples

    def test_config_rejects_non_positive_override(self):
        with pytest.raises(ValueError):
            SimulationConfig(node_shedding_intervals={"node-0": 0.0})
