"""Differential and exactly-once tests for the reliable delivery channel.

Acceptance bar (robustness PR): turning reliable delivery on over a
fault-free network must be **invisible** — seeded runs are bit-exact
result-identical to the plain latency-only network under LAN, WAN and
zero-latency models and under both drivers.  Under a loss-only fault
schedule (sustained drop + duplication + jitter) the channel must deliver
every data/result message exactly once: after a final drain the transport
ledger closes with zero expiries, zero unaccounted messages and zero
duplicate deliveries reaching the application.
"""

import pytest

from repro.experiments.common import build_federation
from repro.faults import FaultInjector, FaultPlan, LossEpisode
from repro.runtime import EventRuntime
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.workloads.generators import WorkloadSpec, generate_complex_workload

DROP = 0.08
DUPLICATE = 0.05
JITTER = 0.02


def federated_config(latency=0.005, reliable=False, heartbeat=None, runtime="event"):
    return SimulationConfig(
        duration_seconds=6.0,
        warmup_seconds=2.0,
        stw_seconds=6.0,
        capacity_fraction=0.4,
        network_latency_seconds=latency,
        reliable_delivery=reliable,
        heartbeat_interval=heartbeat,
        runtime=runtime,
        retain_result_values=True,
        seed=3,
    )


def run_federated(config):
    spec = WorkloadSpec(
        num_queries=6,
        fragments_per_query=(1, 2),
        kinds=("avg-all", "top5", "cov"),
        source_rate=40.0,
        seed=3,
    )
    queries = generate_complex_workload(spec)
    system = build_federation(queries, num_nodes=3, config=config)
    return Simulator(system, config).run()


def assert_results_identical(a, b):
    """The application-visible outcome of two runs is bit-exact the same."""
    assert a.per_query_sic == b.per_query_sic
    assert a.sic_time_series == b.sic_time_series
    assert a.result_values == b.result_values
    assert len(a.node_summaries) == len(b.node_summaries)
    for x, y in zip(a.node_summaries, b.node_summaries):
        assert x.node_id == y.node_id
        assert x.received_tuples == y.received_tuples
        assert x.kept_tuples == y.kept_tuples
        assert x.shed_tuples == y.shed_tuples


class TestFaultFreeTransparency:
    """Reliability on + zero faults ≡ the latency-only network."""

    @pytest.mark.parametrize("latency", [0.005, 0.05, 0.0], ids=["lan", "wan", "zero"])
    def test_reliable_run_identical_to_baseline(self, latency):
        baseline = run_federated(federated_config(latency=latency, reliable=False))
        reliable = run_federated(federated_config(latency=latency, reliable=True))
        assert_results_identical(reliable, baseline)
        # Acks ride the transport-internal path: the logical message and
        # byte counters are untouched by the reliability layer.
        assert reliable.messages_sent == baseline.messages_sent
        assert reliable.bytes_sent == baseline.bytes_sent

    @pytest.mark.parametrize("latency", [0.005, 0.0], ids=["lan", "zero"])
    def test_no_spurious_retransmissions(self, latency):
        # The RTO always exceeds the fault-free round trip (including the
        # min_rto floor at zero latency), so acks beat every first timeout.
        result = run_federated(federated_config(latency=latency, reliable=True))
        stats = result.network["stats"]
        assert stats["retransmits"] == {}
        assert stats["duplicates"] == {}
        assert stats["expired"] == {}
        assert stats["acks_sent"] > 0

    def test_event_and_lockstep_drivers_identical_with_reliability(self):
        event = run_federated(federated_config(reliable=True, runtime="event"))
        lockstep = run_federated(federated_config(reliable=True, runtime="lockstep"))
        assert_results_identical(event, lockstep)
        assert event.messages_sent == lockstep.messages_sent

    def test_heartbeats_do_not_change_results(self):
        # With zero faults every heartbeat arrives, the detector never
        # mutates the federation, and the run's results stay bit-exact
        # (only the message counters grow by the beacon traffic).
        baseline = run_federated(federated_config(reliable=True))
        with_detector = run_federated(
            federated_config(reliable=True, heartbeat=0.25)
        )
        assert_results_identical(with_detector, baseline)
        assert with_detector.messages_sent > baseline.messages_sent
        assert with_detector.network["stats"]["sent"]["heartbeat"] > 0


class TestExactlyOnceUnderLoss:
    """A loss-only schedule loses and duplicates nothing, provably."""

    def _run_lossy(self, seed=11):
        config = federated_config(reliable=True)
        spec = WorkloadSpec(
            num_queries=6,
            fragments_per_query=(1, 2),
            kinds=("avg-all", "top5", "cov"),
            source_rate=40.0,
            seed=3,
        )
        system = build_federation(
            generate_complex_workload(spec), num_nodes=3, config=config
        )
        runtime = EventRuntime(system)
        plan = FaultPlan(
            seed=seed,
            episodes=(
                LossEpisode(
                    start=0.0,
                    end=8.0,
                    drop_probability=DROP,
                    duplicate_probability=DUPLICATE,
                    jitter_seconds=JITTER,
                ),
            ),
        )
        injector = FaultInjector(runtime, plan)
        runtime.run(8.0)
        system.drain_network()
        summary = injector.summary()
        injector.close()
        runtime.close()
        return system, summary

    def test_ledger_closes_with_zero_loss(self):
        system, summary = self._run_lossy()
        stats = system.network.stats
        # The schedule genuinely dropped and duplicated traffic...
        assert summary["drops_by_cause"]["loss"] > 0
        assert summary["duplicated"] > 0
        for kind in ("data", "result"):
            # ...the channel retransmitted through it...
            assert stats.retransmits.get(kind, 0) > 0
            # ...and every logical send was delivered exactly once: no
            # expiries, no unaccounted messages, duplicates suppressed.
            assert stats.expired.get(kind, 0) == 0
            assert stats.sent[kind] == stats.delivered[kind]
            assert stats.tuples_sent[kind] == stats.tuples_delivered[kind]
        assert stats._total(stats.duplicates) > 0
        # Fully drained: no unacked messages, nothing buffered, wire empty.
        assert system.network.reliable_pending() == 0
        assert system.network.reorder_buffered() == 0
        assert system.network.in_flight() == 0

    def test_lossy_runs_reproduce_exactly(self):
        first_system, first_summary = self._run_lossy(seed=11)
        second_system, second_summary = self._run_lossy(seed=11)
        assert first_summary == second_summary
        assert (
            first_system.network.stats.as_dict()
            == second_system.network.stats.as_dict()
        )

    def test_different_fault_seed_changes_the_faults(self):
        _, summary_a = self._run_lossy(seed=11)
        _, summary_b = self._run_lossy(seed=12)
        assert summary_a["drops_by_cause"] != summary_b["drops_by_cause"]
