"""Differential tests: sharded runtime ≡ single-heap event runtime.

The acceptance bar for the sharded driver is bit-exact result identity with
``runtime="event"`` for equal seeds, in **both** execution modes:

* inline shards — per-site schedulers executed sequentially window by
  window in this process (the debuggable default);
* multiprocess shards — forked worker processes, boundary traffic crossing
  process borders through the wire serializers.

The matrix covers LAN / WAN / zero-latency networks, bursty sources,
reliable delivery, explicit partition maps, off-cadence coordinator
updates, and the full lifecycle set (mid-run migration, node fail/rejoin,
coordinator failover) — each compared against the identical seeded run
under the single-heap runtime, field for field.

Fault-injection reproducibility rides along: the injector draws every
probabilistic decision from a per-link child RNG (seeded by a stable
SHA-256 hash, not the salted builtin ``hash()``), so the same plan + seed
injects the *same* faults under both drivers even though their global send
interleavings differ — asserted here end to end.
"""

import os

import pytest

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.experiments.common import build_federation
from repro.faults import FaultInjector, FaultPlan, LossEpisode, link_seed
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, ReliabilityConfig, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime, ShardedRuntime
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.generators import WorkloadSpec, generate_complex_workload

INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


def assert_identical(sharded, event):
    """Assert two RunResults are byte-for-byte the same run."""
    assert sharded.per_query_sic == event.per_query_sic
    assert sharded.sic_time_series == event.sic_time_series
    assert sharded.result_values == event.result_values
    assert sharded.messages_sent == event.messages_sent
    assert sharded.bytes_sent == event.bytes_sent
    assert len(sharded.node_summaries) == len(event.node_summaries)
    for s, e in zip(sharded.node_summaries, event.node_summaries):
        assert s.node_id == e.node_id
        assert s.received_tuples == e.received_tuples
        assert s.kept_tuples == e.kept_tuples
        assert s.shed_tuples == e.shed_tuples
        assert s.overloaded_ticks == e.overloaded_ticks
        assert s.ticks == e.ticks


def run_federated(
    runtime,
    latency=0.005,
    workers=2,
    processes=False,
    partition=None,
    bursty=False,
    reliable=False,
    update_interval=None,
):
    config = SimulationConfig(
        duration_seconds=5.0,
        warmup_seconds=1.0,
        stw_seconds=5.0,
        capacity_fraction=0.4,
        network_latency_seconds=latency,
        coordinator_update_interval=update_interval,
        reliable_delivery=reliable,
        runtime=runtime,
        workers=workers,
        sharded_processes=processes,
        shard_partition=partition or {},
        retain_result_values=True,
        seed=3,
    )
    spec = WorkloadSpec(
        num_queries=5,
        fragments_per_query=(1, 2),
        kinds=("avg-all", "top5", "cov"),
        source_rate=40.0,
        bursty=bursty,
        seed=3,
    )
    queries = generate_complex_workload(spec)
    system = build_federation(queries, num_nodes=3, config=config)
    return Simulator(system, config).run()


# --------------------------------------------------------------------------
# Lifecycle scenarios, driven through the runtimes directly (the simulator
# has no mid-run lifecycle hooks).
# --------------------------------------------------------------------------


def make_node(node_id, budget=500.0, seed=0):
    return FspsNode(
        node_id=node_id,
        shedder=make_shedder("balance-sic", seed=seed),
        budget_per_interval=budget,
        stw_config=STW,
    )


def make_local_system(latency, num_nodes=3, queries=3, reliable=False):
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(
            UniformLatency(latency),
            reliability=ReliabilityConfig() if reliable else None,
        ),
        retain_results=True,
    )
    for i in range(num_nodes):
        system.add_node(make_node(f"node-{i}", seed=i))
    for i in range(queries):
        query = make_aggregate_query(
            ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
        )
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fid: f"node-{i % num_nodes}" for fid in query.fragments},
        )
    return system


def make_runtime(system, kind, workers=2, processes=False, checkpoint_interval=None):
    if kind == "event":
        return EventRuntime(system, checkpoint_interval=checkpoint_interval)
    return ShardedRuntime(
        system,
        checkpoint_interval=checkpoint_interval,
        workers=workers,
        processes=processes,
    )


def query_results(system):
    """Per-query observable outcome: SIC series, counts, payloads."""
    out = {}
    for coordinator in system.coordinators.all():
        out[coordinator.query_id] = (
            coordinator.tracker.history,
            coordinator.result_tuples,
            list(coordinator.result_values),
        )
    return out


def observables(system):
    stats = system.network.stats
    return (
        query_results(system),
        system.total_received_tuples(),
        dict(stats.sent),
        dict(stats.delivered),
        stats.bytes_wire,
    )


def run_scenario(
    kind,
    scenario,
    workers=2,
    processes=False,
    latency=0.005,
    checkpoint_interval=None,
):
    system = make_local_system(latency)
    runtime = make_runtime(
        system,
        kind,
        workers=workers,
        processes=processes,
        checkpoint_interval=checkpoint_interval,
    )
    runtime.run(4.0)
    if scenario == "migrate":
        fragment_id = next(iter(system.queries["q0"].fragments))
        report = runtime.migrate_fragment(fragment_id, "node-1")
        assert report.target_node == "node-1"
    elif scenario == "failrejoin":
        runtime.fail_node("node-1")
        runtime.run(1.0)
        runtime.rejoin_node(make_node("node-1", seed=9))
    elif scenario == "failcoord":
        runtime.fail_coordinator("q0")
    elif scenario != "plain":  # pragma: no cover - test bug guard
        raise ValueError(scenario)
    runtime.run(4.0)
    runtime.close()
    return observables(system)


class TestInlineShardedIdentity:
    @pytest.mark.parametrize(
        "latency", [0.005, 0.05, 0.0], ids=["lan", "wan", "zero"]
    )
    def test_latency_matrix_identical(self, latency):
        assert_identical(
            run_federated("sharded", latency=latency),
            run_federated("event", latency=latency),
        )

    def test_three_workers_identical(self):
        assert_identical(
            run_federated("sharded", workers=3), run_federated("event")
        )

    def test_explicit_partition_identical(self):
        # Pinning every site onto one shard skews the balance but must not
        # change a single result — placement only affects execution order
        # *within* windows, which the merge order makes irrelevant.
        partition = {"node-0": 1, "node-1": 1, "node-2": 1}
        assert_identical(
            run_federated("sharded", partition=partition),
            run_federated("event"),
        )

    def test_bursty_sources_identical(self):
        assert_identical(
            run_federated("sharded", bursty=True),
            run_federated("event", bursty=True),
        )

    def test_reliable_delivery_identical(self):
        assert_identical(
            run_federated("sharded", reliable=True),
            run_federated("event", reliable=True),
        )

    def test_off_cadence_update_interval_identical(self):
        assert_identical(
            run_federated("sharded", update_interval=0.6),
            run_federated("event", update_interval=0.6),
        )

    def test_some_shedding_actually_happened(self):
        result = run_federated("sharded")
        assert any(s.shed_tuples > 0 for s in result.node_summaries)


class TestInlineLifecycleIdentity:
    @pytest.mark.parametrize(
        "scenario", ["plain", "migrate", "failrejoin", "failcoord"]
    )
    def test_scenario_identical(self, scenario):
        checkpoint = INTERVAL * 3 if scenario != "plain" else None
        assert run_scenario(
            "sharded", scenario, checkpoint_interval=checkpoint
        ) == run_scenario("event", scenario, checkpoint_interval=checkpoint)

    def test_migration_under_wan_identical(self):
        assert run_scenario("sharded", "migrate", latency=0.05) == run_scenario(
            "event", "migrate", latency=0.05
        )


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="multiprocess shards require fork"
)
class TestMultiprocessIdentity:
    @pytest.mark.parametrize("latency", [0.005, 0.05], ids=["lan", "wan"])
    def test_latency_matrix_identical(self, latency):
        assert_identical(
            run_federated("sharded", latency=latency, workers=2, processes=True),
            run_federated("event", latency=latency),
        )

    def test_three_workers_identical(self):
        assert_identical(
            run_federated("sharded", workers=3, processes=True),
            run_federated("event"),
        )

    def test_reliable_delivery_identical(self):
        assert_identical(
            run_federated("sharded", reliable=True, processes=True),
            run_federated("event", reliable=True),
        )

    @pytest.mark.parametrize("scenario", ["migrate", "failrejoin", "failcoord"])
    def test_lifecycle_identical(self, scenario):
        assert run_scenario(
            "sharded",
            scenario,
            workers=3,
            processes=True,
            checkpoint_interval=INTERVAL * 3,
        ) == run_scenario(
            "event", scenario, checkpoint_interval=INTERVAL * 3
        )


class TestMultiprocessRestrictions:
    def test_zero_lookahead_rejected(self):
        system = make_local_system(0.0)
        with pytest.raises(ValueError, match="lookahead"):
            ShardedRuntime(system, workers=2, processes=True)

    def test_config_rejects_heartbeat_with_processes(self):
        with pytest.raises(ValueError, match="heartbeat"):
            SimulationConfig(
                runtime="sharded", sharded_processes=True, heartbeat_interval=0.5
            )

    def test_config_rejects_processes_without_sharded_runtime(self):
        with pytest.raises(ValueError, match="sharded"):
            SimulationConfig(runtime="event", sharded_processes=True)

    def test_unsupported_lifecycle_op_raises(self):
        system = make_local_system(0.005)
        runtime = ShardedRuntime(system, workers=2, processes=True)
        try:
            with pytest.raises(NotImplementedError):
                runtime.remove_node("node-2")
        finally:
            runtime.close()

    def test_post_fork_control_schedule_raises(self):
        system = make_local_system(0.005)
        runtime = ShardedRuntime(system, workers=2, processes=True)
        try:
            with pytest.raises(RuntimeError, match="control-lane"):
                runtime.scheduler.schedule(1.0, -1, lambda now: None)
        finally:
            runtime.close()


class TestShardedChaosReproducibility:
    """Satellite: same seed ⇒ same faults under event and sharded drivers."""

    PLAN_SEED = 11

    def _plan(self):
        return FaultPlan(
            seed=self.PLAN_SEED,
            episodes=(
                LossEpisode(
                    start=1.0,
                    end=5.0,
                    drop_probability=0.2,
                    duplicate_probability=0.1,
                    jitter_seconds=0.02,
                ),
            ),
        )

    def _run(self, kind, workers=2):
        system = make_local_system(0.05, reliable=True)
        runtime = make_runtime(system, kind, workers=workers)
        injector = FaultInjector(runtime, self._plan())
        runtime.run(8.0)
        system.drain_network()
        summary = injector.summary()
        injector.close()
        runtime.close()
        return observables(system), summary

    def test_same_seed_same_faults_inline_sharded(self):
        event_obs, event_summary = self._run("event")
        sharded_obs, sharded_summary = self._run("sharded")
        # The exact same transmissions were dropped, duplicated and
        # jittered on every link, so the whole runs stay identical.
        assert sharded_summary == event_summary
        assert sharded_summary["drops_by_cause"]["loss"] > 0
        assert sharded_obs == event_obs

    def test_three_worker_partitioning_does_not_change_faults(self):
        two_obs, two_summary = self._run("sharded", workers=2)
        three_obs, three_summary = self._run("sharded", workers=3)
        assert two_summary == three_summary
        assert two_obs == three_obs

    def test_link_seed_is_stable_and_per_link(self):
        # Documented contract: derived from SHA-256, never the salted
        # builtin hash() — the value below must hold on every process,
        # every platform, every PYTHONHASHSEED.
        assert link_seed(0, "a", "b") == link_seed(0, "a", "b")
        assert link_seed(0, "a", "b") != link_seed(0, "b", "a")
        assert link_seed(0, "a", "b") != link_seed(1, "a", "b")
        import hashlib

        expected = int.from_bytes(
            hashlib.sha256(b"7:node-0:node-1").digest()[:8], "big"
        )
        assert link_seed(7, "node-0", "node-1") == expected
