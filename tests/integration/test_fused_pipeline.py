"""End-to-end differential tests: fused fragment execution ≡ staged pipeline.

The acceptance bar for the fragment plan compiler is the same oracle pattern
as the columnar v2 work, extended with the fusion axis: for equal seeds a
``fusion="on"`` run must reproduce the ``fusion="off"`` (staged v2) run's
``RunResult`` exactly — per-query SIC values, result payloads, shed/kept
counters and network accounting — which also closes the oracle chain through
the list backend and the seed per-tuple pipeline.  Covered scenarios:

* the aggregate workload (avg/max/count, including the Having-count) plus a
  Where-filtered average that exercises the fused mask ladder, across
  LAN/WAN/zero-latency networks;
* bursty sources (fractional rates through ``BurstySource``);
* a live mid-run ``migrate_fragment`` (fused state lives in the staged
  window layout, so checkpoints are representation-identical);
* a node failure with checkpointed rejoin, including conservation of the
  tuple ledger (nothing lost, nothing double-counted).
"""

import pytest

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime
from repro.simulation.config import SimulationConfig
from repro.streaming.cql import compile_query
from repro.streaming.engine import LocalEngine
from repro.streaming.fused import use_fusion
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.sources import BurstySource, ValueSource
from repro.workloads.spec import WorkloadQuery

FILTERED_STATEMENT = "Select Avg(t.v) From Src[Range 1 sec] Where t.v >= 20"


def make_filtered_query(query_id, rate=173.3, dataset="uniform", seed=0):
    """A Where-filtered average: compiles to a fused plan with a mask stage."""
    source_id = f"{query_id}/src"
    graph = compile_query(
        FILTERED_STATEMENT, query_id=query_id, sources={"Src": [source_id]}
    )
    fragments = {
        f.fragment_id: f
        for f in graph.partition({op: "f0" for op in graph.operators}).values()
    }
    return WorkloadQuery(
        query_id=query_id,
        kind="avg",
        fragments=fragments,
        sources=[ValueSource(source_id, rate=rate, dataset=dataset, seed=seed)],
    )


def run_local(fusion, latency=0.005, bursty=False, columnar=True, backend=None):
    config = SimulationConfig(
        duration_seconds=4.0,
        warmup_seconds=1.0,
        capacity_fraction=0.5,
        columnar=columnar,
        columnar_backend=backend,
        fusion=fusion,
        network_latency_seconds=latency,
        retain_result_values=True,
        seed=0,
    )
    engine = LocalEngine(config)
    kinds = ("avg", "max", "count")
    for i in range(6):
        query = make_aggregate_query(
            kinds[i % 3], query_id=f"q{i}", rate=173.3, dataset="uniform", seed=i
        )
        if bursty:
            query.sources = [BurstySource(s, seed=i) for s in query.sources]
        engine.add_query(query)
    for i in range(3):
        query = make_filtered_query(f"fq{i}", seed=10 + i)
        if bursty:
            query.sources = [BurstySource(s, seed=10 + i) for s in query.sources]
        engine.add_query(query)
    return engine.run()


def assert_runs_identical(a, b):
    assert a.per_query_sic == b.per_query_sic
    assert a.sic_time_series == b.sic_time_series
    assert a.result_values == b.result_values
    for sa, sb in zip(a.node_summaries, b.node_summaries):
        assert sa.received_tuples == sb.received_tuples
        assert sa.kept_tuples == sb.kept_tuples
        assert sa.shed_tuples == sb.shed_tuples
        assert sa.overloaded_ticks == sb.overloaded_ticks
    assert a.messages_sent == b.messages_sent
    assert a.bytes_sent == b.bytes_sent


class TestFusedLocalIdentity:
    """Fused runs ≡ staged v2 runs, bit for bit, with real overload/shedding."""

    @pytest.mark.parametrize(
        "latency", [0.005, 0.075, 0.0], ids=["lan", "wan", "zero"]
    )
    def test_identical_across_networks(self, latency):
        fused = run_local("on", latency=latency)
        staged = run_local("off", latency=latency)
        assert_runs_identical(fused, staged)

    def test_identical_with_bursty_sources(self):
        fused = run_local("on", bursty=True)
        staged = run_local("off", bursty=True)
        assert_runs_identical(fused, staged)

    def test_fused_matches_list_backend_oracle(self):
        # The list backend always runs staged; fusion="on" there is a no-op,
        # closing the chain fused ≡ staged-numpy ≡ staged-list.
        fused = run_local("on", backend="numpy")
        list_run = run_local("on", backend="list")
        assert_runs_identical(fused, list_run)

    def test_fused_matches_per_tuple_pipeline(self):
        fused = run_local("on")
        per_tuple = run_local("off", columnar=False)
        assert fused.per_query_sic == per_tuple.per_query_sic
        assert fused.result_values == per_tuple.result_values

    def test_shedding_and_filtering_actually_happened(self):
        result = run_local("on")
        assert any(s.shed_tuples > 0 for s in result.node_summaries)
        # The Where-filtered queries produced results through the mask stage.
        assert any(q.startswith("fq") for q in result.per_query_sic)
        assert all(
            result.per_query_sic[q] > 0
            for q in result.per_query_sic
            if q.startswith("fq")
        )


INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


def make_node(node_id, budget=500.0, seed=0):
    return FspsNode(
        node_id=node_id,
        shedder=make_shedder("balance-sic", seed=seed),
        budget_per_interval=budget,
        stw_config=STW,
    )


def make_system(num_nodes=2, budget=500.0, latency=0.005):
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(UniformLatency(latency)),
        retain_results=True,
    )
    for i in range(num_nodes):
        system.add_node(make_node(f"node-{i}", budget=budget, seed=i))
    for i in range(2):
        query = make_aggregate_query(
            ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
        )
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fid: f"node-{i % num_nodes}" for fid in query.fragments},
        )
    filtered = make_filtered_query("fq0", rate=80.0, seed=7)
    system.deploy_query(
        filtered.query_id,
        filtered.fragments,
        filtered.sources,
        {fid: "node-0" for fid in filtered.fragments},
    )
    return system


def query_results(system):
    return {
        coordinator.query_id: (
            list(coordinator.tracker.history),
            coordinator.result_tuples,
            list(coordinator.result_values),
        )
        for coordinator in system.coordinators.all()
    }


class TestFusedMigrationIdentity:
    """A mid-run migration under fused execution stays invisible: the fused
    prefix keeps all state in the staged window layout, so the checkpoint
    envelope is representation-identical and the run matches staged."""

    def run_with_migration(self, fusion):
        with use_fusion(fusion):
            system = make_system()
            runtime = EventRuntime(system)
            runtime.run(4.0)
            fragment_id = next(iter(system.queries["fq0"].fragments))
            runtime.migrate_fragment(fragment_id, "node-1")
            runtime.run(4.0)
            runtime.close()
            return query_results(system)

    def test_migration_mid_run_identical_across_fusion_modes(self):
        fused = self.run_with_migration("on")
        staged = self.run_with_migration("off")
        assert fused == staged
        assert all(results[1] > 0 for results in fused.values())


class TestFusedFailRejoinIdentity:
    """Crash + checkpointed rejoin behaves identically fused and staged, and
    the tuple ledger closes (nothing lost or double-counted) either way."""

    def run_with_fail_rejoin(self, fusion):
        with use_fusion(fusion):
            system = make_system()
            runtime = EventRuntime(system, checkpoint_interval=INTERVAL)
            runtime.run(4.0)
            runtime.fail_node("node-1")
            runtime.run(2.0)
            report = runtime.rejoin_node(make_node("node-1", seed=9))
            assert report.restored_fragments
            assert not report.fragments_without_checkpoint
            runtime.run(4.0)
            runtime.close()
            received = system.total_received_tuples()
            kept = sum(n.stats.kept_tuples for n in system.nodes.values())
            shed = system.total_shed_tuples()
            buffered = sum(
                n.input_buffer_size() for n in system.nodes.values()
            )
            return query_results(system), (received, kept, shed, buffered)

    def test_fail_rejoin_identical_across_fusion_modes(self):
        fused, fused_ledger = self.run_with_fail_rejoin("on")
        staged, staged_ledger = self.run_with_fail_rejoin("off")
        assert fused == staged
        assert fused_ledger == staged_ledger
