"""Lifecycle edge cases under injected faults, plus the chaos experiment.

These tests drive the full resilience stack — reliable delivery, heartbeat
failure detection, checkpoint-restore recovery — through the fault schedules
that historically break such stacks:

* a node crashing while the reliable channel still holds unacknowledged
  messages for it (the retransmit backlog must redeliver exactly once after
  the rejoin, not vanish and not double);
* a partition healing while a coordinator failover is in progress on the
  isolated side;
* a heartbeat false positive — a slow-but-alive node declared dead and
  rejoined, repeatedly, without wedging the federation.
"""

import pytest

from repro.experiments import chaos
from repro.experiments.testbeds import scaled_config
from repro.faults import (
    CoordinatorCrash,
    FaultInjector,
    FaultPlan,
    LossEpisode,
    NodeCrash,
    PartitionEpisode,
    SlowEpisode,
)

SEED = 7


def build_stack(seed=SEED, rate=60.0):
    """A 3-node federation with the full resilience stack attached."""
    base = scaled_config("small", seed=seed)
    system, runtime, detector, _ = chaos._build(base, rate, seed)
    return system, runtime, detector


def run_with_plan(plan, duration=10.0, seed=SEED):
    system, runtime, detector = build_stack(seed=seed)
    injector = FaultInjector(runtime, plan)
    runtime.run(duration)
    system.drain_network()
    summary = injector.summary()
    injector.close()
    detector.close()
    runtime.close()
    return system, detector, summary


def assert_ledger_closed(system):
    """Every reliable send is delivered or expired — nothing unaccounted."""
    stats = system.network.stats
    for kind in ("data", "result"):
        sent = stats.sent.get(kind, 0)
        delivered = stats.delivered.get(kind, 0)
        expired = stats.expired.get(kind, 0)
        assert sent == delivered + expired, (
            f"{kind}: {sent} sent != {delivered} delivered + {expired} expired"
        )
    assert system.network.reliable_pending() == 0
    assert system.network.in_flight() == 0


class TestCrashDuringRetransmitWindow:
    def test_backlog_redelivered_exactly_once_after_rejoin(self):
        # Loss targeted at node-2 fills its retransmit window right before
        # the node's process dies; the machine reboots 1.5 s later and the
        # detector rejoins it from checkpoints.  The backlog must drain into
        # the rejoined node with nothing expired and nothing double-counted.
        plan = FaultPlan(
            seed=SEED,
            episodes=(
                LossEpisode(
                    start=2.5,
                    end=3.5,
                    drop_probability=0.5,
                    endpoints=(chaos.CRASHED_NODE,),
                ),
                NodeCrash(at=3.0, node_id=chaos.CRASHED_NODE, repair_after=1.5),
            ),
        )
        system, detector, summary = run_with_plan(plan)
        assert any(f"crash {chaos.CRASHED_NODE}" == what for _, what in summary["timeline"])
        assert any(f"repair {chaos.CRASHED_NODE}" == what for _, what in summary["timeline"])
        # Detected, recovered, and back in the federation.
        assert any(d["node_id"] == chaos.CRASHED_NODE for d in detector.detections)
        assert any(r["node_id"] == chaos.CRASHED_NODE for r in detector.recoveries)
        assert chaos.CRASHED_NODE in system.nodes
        # The crash forced real retransmissions...
        stats = system.network.stats
        assert stats.retransmits.get("data", 0) > 0
        # ...and still nothing was lost or duplicated at the application.
        assert stats.expired.get("data", 0) == 0
        assert stats.tuples_sent["data"] == stats.tuples_delivered["data"]
        assert_ledger_closed(system)


class TestPartitionHealRacesFailover:
    def test_failover_during_partition_then_heal(self):
        # node-1 is fully isolated for 3 s; near the end of the partition the
        # coordinator of a query hosted on node-1 crashes and a standby is
        # promoted.  The heal then releases the isolated side's backlog into
        # the reorganised federation.
        plan = FaultPlan(
            seed=SEED,
            episodes=(
                PartitionEpisode(
                    start=3.0, end=6.0, group_a=(chaos.PARTITIONED_NODE,)
                ),
                CoordinatorCrash(at=5.75, query_id="chaos-q1"),
            ),
        )
        system, detector, summary = run_with_plan(plan)
        assert summary["drops_by_cause"]["partition"] > 0
        assert any("fail coordinator chaos-q1" == what for _, what in summary["timeline"])
        # The isolated node was declared dead (the textbook false positive)
        # and recovered every time its endpoint proved reachable again.
        flaps = [d for d in detector.detections if d["node_id"] == chaos.PARTITIONED_NODE]
        assert flaps
        assert chaos.PARTITIONED_NODE in system.nodes
        assert detector.summary()["still_dead"] == []
        # The promoted coordinator still serves the query.
        assert "chaos-q1" in system.queries
        assert_ledger_closed(system)


class TestHeartbeatFalsePositive:
    def test_slow_node_declared_dead_then_rejoined(self):
        # node-1 stays alive but its links gain 2 s of latency — double the
        # detector timeout — so its heartbeats arrive too late.  The detector
        # must treat it as crashed (fail + checkpoint-restore rejoin) and the
        # federation must come out whole once the slowness passes.
        plan = FaultPlan(
            seed=SEED,
            episodes=(
                SlowEpisode(
                    start=3.0,
                    end=5.0,
                    endpoint=chaos.PARTITIONED_NODE,
                    extra_latency_seconds=2.0,
                ),
            ),
        )
        system, detector, summary = run_with_plan(plan)
        # Nothing actually crashed...
        assert not any("crash" in what for _, what in summary["timeline"])
        # ...yet the slow node was declared dead at least once and rejoined.
        false_positives = [
            d for d in detector.detections if d["node_id"] == chaos.PARTITIONED_NODE
        ]
        assert false_positives
        assert all(
            d["detection_latency"] >= detector.timeout for d in false_positives
        )
        assert any(
            r["node_id"] == chaos.PARTITIONED_NODE for r in detector.recoveries
        )
        assert detector.summary()["still_dead"] == []
        assert len(system.nodes) == chaos.NUM_NODES
        assert_ledger_closed(system)


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return chaos.run(scale="small", seed=0, phase_seconds=3.0, rate=60.0)

    def test_reports_every_phase_with_control_columns(self, result):
        assert [row["phase"] for row in result.rows] == list(chaos.PHASES)
        for row in result.rows:
            assert 0.0 <= row["jains_index"] <= 1.0
            assert 0.0 <= row["control_jains"] <= 1.0

    def test_faults_were_injected_and_recovered(self, result):
        notes = "\n".join(result.notes)
        assert "detected" in notes and "recovered" in notes
        assert "fail coordinator" in notes

    def test_exactly_once_ledgers_close(self, result):
        ledger_notes = [n for n in result.notes if "unaccounted" in n]
        # data + result for both the chaos run and the control.
        assert len(ledger_notes) == 4
        for note in ledger_notes:
            assert "(0 unaccounted)" in note

    def test_control_run_is_quiescent(self, result):
        assert not any(n.startswith("WARNING") for n in result.notes)
        control_data = next(
            n for n in result.notes if n.startswith("control data:")
        )
        assert "0 retransmissions" in control_data
