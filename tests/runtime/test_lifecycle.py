"""Tests for the mid-run cluster & query lifecycle API of the event runtime."""

import pytest

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime
from repro.workloads.aggregate import make_aggregate_query

INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


def make_node(node_id, budget=150.0, shedder="balance-sic", seed=0):
    return FspsNode(
        node_id=node_id,
        shedder=make_shedder(shedder, seed=seed),
        budget_per_interval=budget,
        stw_config=STW,
    )


def make_system(num_nodes=2, budget=150.0):
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(UniformLatency(0.005)),
    )
    for i in range(num_nodes):
        system.add_node(make_node(f"node-{i}", budget=budget, seed=i))
    return system


def deploy(target, query_id, node_id, rate=80.0, seed=0):
    """Deploy a single-fragment aggregate query on ``node_id``.

    ``target`` is either a FederatedSystem (pre-run) or an EventRuntime
    (mid-run).
    """
    query = make_aggregate_query("avg", query_id=query_id, rate=rate, seed=seed)
    placement = {fragment_id: node_id for fragment_id in query.fragments}
    return target.deploy_query(
        query.query_id, query.fragments, query.sources, placement
    )


class TestQueryLifecycle:
    def test_mid_run_deploy_produces_results(self):
        system = make_system()
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(3.0)
        before = system.coordinators.coordinator("q0").result_tuples
        deploy(runtime, "q1", "node-1", seed=1)
        runtime.run(3.0)
        assert system.coordinators.coordinator("q0").result_tuples > before
        late = system.coordinators.coordinator("q1")
        assert late.result_tuples > 0
        assert late.current_sic(system.now) > 0.0
        # The late query's SIC accounting starts at its deployment, so its
        # coverage normalisation does not punish the late arrival.
        assert system.queries["q1"].deployed_at == pytest.approx(3.0)

    def test_undeploy_stops_generation_and_tears_down(self):
        system = make_system()
        deploy(system, "q0", "node-0", seed=0)
        deploy(system, "q1", "node-0", seed=1)
        runtime = EventRuntime(system)
        runtime.run(3.0)
        coordinator = runtime.undeploy_query("q1")
        assert coordinator.query_id == "q1"
        assert "q1" not in system.queries
        assert "q1" not in system.coordinators
        assert system.nodes["node-0"].hosted_queries() == ["q0"]
        received_at_undeploy = system.total_received_tuples()
        runtime.run(3.0)
        # q0 keeps flowing; q1's sources are gone (any in-flight remainder is
        # at most one interval's worth, delivered right after the undeploy).
        assert "q0" in system.current_sic_per_query()
        assert "q1" not in system.current_sic_per_query()
        q0_per_tick = 80.0 * INTERVAL
        assert (
            system.total_received_tuples() - received_at_undeploy
            <= (3.0 / INTERVAL + 1) * q0_per_tick
        )

    def test_redeploy_same_id_does_not_receive_stale_in_flight_messages(self):
        # A batch created at or before the new incarnation's deploy instant
        # belongs to the previous incarnation and must be dropped on
        # delivery, not leak into the redeployed query.
        from repro.core.tuples import Batch, Tuple
        from repro.federation.fsps import COORDINATOR_ENDPOINT
        from repro.federation.network import DataMessage, ResultMessage

        system = make_system()
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(3.0)
        runtime.undeploy_query("q0")
        fresh = deploy(runtime, "q0", "node-0", seed=0)
        assert fresh.deployed_at == pytest.approx(3.0)
        node = system.nodes["node-0"]
        received_before = node.stats.received_tuples
        stale_batch = Batch(
            "q0", [Tuple(2.9, 0.01, {"v": 1.0})], created_at=2.9,
            fragment_id=next(iter(fresh.fragments)),
        )
        system.dispatch(
            DataMessage(destination="node-0", batch=stale_batch,
                        target_fragment_id=stale_batch.fragment_id),
            now=3.1,
        )
        assert node.stats.received_tuples == received_before
        system.dispatch(
            ResultMessage(destination=COORDINATOR_ENDPOINT, batch=stale_batch),
            now=3.1,
        )
        assert system.coordinators.coordinator("q0").result_tuples == 0
        # An updateSIC from the old incarnation's coordinator is dropped too;
        # one from after the redeploy is applied.
        from repro.federation.network import SicUpdateMessage

        system.dispatch(
            SicUpdateMessage(destination="node-0", query_id="q0",
                             sic_value=0.9, sent_at=2.9),
            now=3.1,
        )
        assert "q0" not in node._reported_sic
        system.dispatch(
            SicUpdateMessage(destination="node-0", query_id="q0",
                             sic_value=0.9, sent_at=3.25),
            now=3.3,
        )
        assert node._reported_sic["q0"] == 0.9
        # Fresh traffic still flows end to end after the redeploy.
        runtime.run(3.0)
        assert system.coordinators.coordinator("q0").result_tuples > 0

    def test_lifecycle_from_event_callback_stamps_event_time(self):
        # deploy_query called from inside an event callback must stamp
        # deployed_at with the scheduler's instant, not the horizon of the
        # previous run() — the stale-message guard anchors on it.
        from repro.runtime.scheduler import PRIORITY_NODE

        system = make_system()
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(1.0)
        deployed_at = {}

        def deploy_late(now):
            fresh = deploy(runtime, "q-late", "node-1", seed=1)
            deployed_at["value"] = fresh.deployed_at

        runtime.scheduler.schedule(1.5, PRIORITY_NODE, deploy_late)
        runtime.run(2.0)
        assert deployed_at["value"] == pytest.approx(1.5)
        assert system.coordinators.coordinator("q-late").result_tuples > 0

    def test_stale_sic_update_for_undeployed_query_is_dropped(self):
        from repro.federation.network import SicUpdateMessage

        system = make_system()
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(3.0)
        runtime.undeploy_query("q0")
        system.dispatch(
            SicUpdateMessage(destination="node-0", query_id="q0", sic_value=0.5),
            now=3.1,
        )
        assert "q0" not in system.nodes["node-0"]._reported_sic

    def test_undeploy_unknown_query_rejected(self):
        system = make_system()
        deploy(system, "q0", "node-0")
        runtime = EventRuntime(system)
        with pytest.raises(ValueError):
            runtime.undeploy_query("nope")


class TestClusterLifecycle:
    def test_mid_run_add_node_hosts_new_query(self):
        system = make_system(num_nodes=1)
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(2.0)
        runtime.add_node(make_node("node-9", seed=9))
        deploy(runtime, "q9", "node-9", seed=9)
        runtime.run(4.0)
        node = system.nodes["node-9"]
        assert node.stats.ticks > 0
        assert node.stats.received_tuples > 0
        assert system.coordinators.coordinator("q9").result_tuples > 0

    def test_fail_node_degrades_only_its_queries(self):
        system = make_system(num_nodes=2)
        deploy(system, "q-keep", "node-0", seed=0)
        deploy(system, "q-lost", "node-1", seed=1)
        runtime = EventRuntime(system)
        runtime.run(4.0)
        sic_before = system.current_sic_per_query()
        assert sic_before["q-lost"] > 0.5
        failed = runtime.fail_node("node-1")
        ticks_at_failure = failed.stats.ticks
        runtime.run(6.0)
        assert "node-1" not in system.nodes
        # The failed node's rounds stopped; the survivor kept running.
        assert failed.stats.ticks == ticks_at_failure
        assert system.nodes["node-0"].stats.ticks == pytest.approx(10.0 / INTERVAL)
        # The lost query's sources are unrouted but keep generating; its
        # result SIC decays to zero while the surviving query is unaffected.
        sic_after = system.current_sic_per_query()
        assert sic_after["q-lost"] == 0.0
        assert sic_after["q-keep"] > 0.5
        routes = system.queries["q-lost"].source_plan
        assert all(route.node_id is None for route in routes)
        # The coordinator no longer addresses the dead node.
        assert "node-1" not in system.coordinators.coordinator("q-lost").hosting_nodes

    def test_remove_node_migrates_hosted_fragments(self):
        # Graceful decommission of a loaded node live-migrates its fragments
        # to the survivors instead of refusing (PR 4).
        system = make_system(num_nodes=2)
        deploy(system, "q0", "node-1", seed=0)
        runtime = EventRuntime(system)
        runtime.run(2.0)
        results_before = system.coordinators.coordinator("q0").result_tuples
        removed = runtime.remove_node("node-1")
        ticks_at_removal = removed.stats.ticks
        assert "node-1" not in system.nodes
        assert not removed.fragments
        fragment_id = next(iter(system.queries["q0"].fragments))
        assert system.placement[fragment_id] == "node-0"
        assert "node-0" in system.coordinators.coordinator("q0").hosting_nodes
        runtime.run(4.0)
        # The query keeps producing results from its new host; the removed
        # node never runs another round.
        assert (
            system.coordinators.coordinator("q0").result_tuples > results_before
        )
        assert system.current_sic_per_query()["q0"] > 0.5
        assert removed.stats.ticks == ticks_at_removal

    def test_remove_node_with_zero_hosted_fragments(self):
        # The decommission edge case: nothing to migrate, node just leaves.
        system = make_system(num_nodes=2)
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(2.0)
        removed = runtime.remove_node("node-1")
        assert not removed.fragments
        assert "node-1" not in system.nodes
        assert system.forwarded_batches == 0
        runtime.run(2.0)
        assert system.current_sic_per_query()["q0"] > 0.0

    def test_remove_last_node_hosting_fragments_refused(self):
        # With nowhere to migrate, the decommission is still refused.
        system = make_system(num_nodes=1)
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.run(1.0)
        with pytest.raises(ValueError):
            runtime.remove_node("node-0")

    def test_remove_node_with_unknown_migration_target_is_all_or_nothing(self):
        system = make_system(num_nodes=2)
        deploy(system, "q0", "node-0", seed=0)
        deploy(system, "q1", "node-0", seed=1)
        runtime = EventRuntime(system)
        runtime.run(1.0)
        hosted_before = sorted(system.nodes["node-0"].fragments)
        with pytest.raises(ValueError):
            runtime.remove_node("node-0", migrate_to=["node-1", "ghost"])
        # The bad target aborted the decommission before any fragment moved.
        assert sorted(system.nodes["node-0"].fragments) == hosted_before
        runtime.run(1.0)
        assert system.coordinators.coordinator("q0").result_tuples > 0

    def test_readded_node_does_not_inherit_interval_override(self):
        system = make_system(num_nodes=1)
        deploy(system, "q0", "node-0", seed=0)
        runtime = EventRuntime(system)
        runtime.add_node(make_node("node-x", seed=1), shedding_interval=0.125)
        runtime.run(2.0)
        fast = runtime.fail_node("node-x")
        assert fast.stats.ticks == pytest.approx(2.0 / 0.125)
        # Re-adding under the same id without an override uses the default
        # cadence, not the dead node's 0.125 s override.
        runtime.add_node(make_node("node-x", seed=2))
        runtime.run(2.0)
        assert system.nodes["node-x"].stats.ticks == pytest.approx(2.0 / INTERVAL)

    def test_fail_unknown_node_rejected(self):
        runtime = EventRuntime(make_system())
        with pytest.raises(ValueError):
            runtime.fail_node("nope")

    def test_undeploy_with_delivery_in_flight(self):
        # Batches sent at the run horizon (latency 5 ms) are still in flight
        # when the query is undeployed; their delivery must be dropped
        # without resurrecting the coordinator or crashing the dispatcher.
        system = make_system(num_nodes=2)
        deploy(system, "q0", "node-0", seed=0)
        deploy(system, "q1", "node-1", seed=1)
        runtime = EventRuntime(system)
        runtime.run(2.0)
        assert system.network.in_flight() > 0
        runtime.undeploy_query("q0")
        runtime.run(2.0)
        assert "q0" not in system.coordinators
        assert "q0" not in system.queries
        # The survivor is untouched and the network queue drained normally.
        assert system.current_sic_per_query() == pytest.approx(
            {"q1": system.coordinators.coordinator("q1").current_sic(system.now)}
        )

    def test_node_id_reuse_after_fail_and_rejoin(self):
        # fail -> rejoin under the same id -> fail again -> add_node fresh
        # under the same id: every transition must leave consistent routing.
        system = make_system(num_nodes=2)
        deploy(system, "q0", "node-1", seed=0)
        runtime = EventRuntime(system, checkpoint_interval=INTERVAL)
        runtime.run(2.0)
        runtime.fail_node("node-1")
        runtime.run(1.0)
        report = runtime.rejoin_node(make_node("node-1", seed=5))
        assert report.restored_fragments == list(system.queries["q0"].fragments)
        runtime.run(2.0)
        assert system.current_sic_per_query()["q0"] > 0.0
        # Second crash; this time the query leaves before the id returns.
        runtime.fail_node("node-1")
        runtime.undeploy_query("q0")
        # The id is now reusable as a plain new node (nothing to restore:
        # rejoin refuses because no lost fragments remain for it).
        with pytest.raises(ValueError):
            runtime.rejoin_node(make_node("node-1", seed=6))
        runtime.add_node(make_node("node-1", seed=6))
        deploy(runtime, "q-new", "node-1", seed=2)
        runtime.run(2.0)
        assert system.coordinators.coordinator("q-new").result_tuples > 0

    def test_rejoin_unknown_node_rejected(self):
        runtime = EventRuntime(make_system())
        with pytest.raises(ValueError):
            runtime.rejoin_node(make_node("ghost"))


class TestRuntimeHygiene:
    def test_two_runtimes_on_one_system_rejected(self):
        system = make_system()
        deploy(system, "q0", "node-0")
        EventRuntime(system)
        with pytest.raises(ValueError):
            EventRuntime(system)

    def test_close_detaches_the_network_listener(self):
        system = make_system()
        deploy(system, "q0", "node-0")
        runtime = EventRuntime(system)
        runtime.run(1.0)
        runtime.close()
        assert system.network.send_listener is None
        # A detached system can keep running under the lockstep driver.
        system.tick()

    def test_run_rejects_non_positive_duration(self):
        runtime = EventRuntime(make_system())
        with pytest.raises(ValueError):
            runtime.run(0.0)
