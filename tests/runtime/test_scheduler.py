"""Unit tests for the deterministic discrete-event scheduler."""

import pytest

from repro.runtime.scheduler import (
    PRIORITY_COORDINATOR,
    PRIORITY_DELIVERY,
    PRIORITY_NODE,
    PRIORITY_POST_DELIVERY,
    PRIORITY_SOURCE,
    EventScheduler,
)


class TestOrdering:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.5, PRIORITY_NODE, lambda t: fired.append(("b", t)))
        scheduler.schedule(0.25, PRIORITY_NODE, lambda t: fired.append(("a", t)))
        scheduler.run_until(1.0)
        assert fired == [("a", 0.25), ("b", 0.5)]

    def test_equal_time_orders_by_priority_then_seq(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, PRIORITY_POST_DELIVERY, lambda t: fired.append("post"))
        scheduler.schedule(1.0, PRIORITY_SOURCE, lambda t: fired.append("source-0"))
        scheduler.schedule(1.0, PRIORITY_NODE, lambda t: fired.append("node"))
        scheduler.schedule(1.0, PRIORITY_SOURCE, lambda t: fired.append("source-1"))
        scheduler.schedule(1.0, PRIORITY_DELIVERY, lambda t: fired.append("deliver"))
        scheduler.schedule(1.0, PRIORITY_COORDINATOR, lambda t: fired.append("coord"))
        scheduler.run_until(1.0)
        # Priority mirrors the lockstep tick's phase order; equal priorities
        # preserve scheduling order.
        assert fired == ["source-0", "source-1", "deliver", "node", "coord", "post"]

    def test_run_until_is_inclusive_of_the_horizon(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, PRIORITY_NODE, lambda t: fired.append(t))
        scheduler.schedule(2.0000001, PRIORITY_NODE, lambda t: fired.append(t))
        assert scheduler.run_until(2.0) == 1
        assert fired == [2.0]
        assert scheduler.pending_events() == 1

    def test_events_scheduled_while_running_are_processed(self):
        scheduler = EventScheduler()
        fired = []

        def recurring(now):
            fired.append(now)
            if now < 1.0:
                scheduler.schedule(now + 0.25, PRIORITY_NODE, recurring)

        scheduler.schedule(0.25, PRIORITY_NODE, recurring)
        scheduler.run_until(1.0)
        assert fired == [0.25, 0.5, 0.75, 1.0]

    def test_same_instant_event_scheduled_during_processing_runs(self):
        scheduler = EventScheduler()
        fired = []

        def outer(now):
            fired.append("outer")
            scheduler.schedule(now, PRIORITY_POST_DELIVERY, lambda t: fired.append("inner"))

        scheduler.schedule(0.5, PRIORITY_NODE, outer)
        scheduler.run_until(0.5)
        assert fired == ["outer", "inner"]


class TestBookkeeping:
    def test_cancelled_events_are_skipped(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(0.5, PRIORITY_NODE, lambda t: fired.append("x"))
        scheduler.schedule(0.5, PRIORITY_NODE, lambda t: fired.append("y"))
        handle.cancel()
        scheduler.run_until(1.0)
        assert fired == ["y"]

    def test_now_advances_to_horizon_even_without_events(self):
        scheduler = EventScheduler()
        scheduler.run_until(3.0)
        assert scheduler.now == 3.0

    def test_scheduling_in_the_past_is_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(1.0)
        with pytest.raises(ValueError):
            scheduler.schedule(0.5, PRIORITY_NODE, lambda t: None)

    def test_current_priority_visible_during_processing(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(
            0.5, PRIORITY_NODE, lambda t: seen.append(scheduler.current_priority)
        )
        scheduler.run_until(1.0)
        assert seen == [PRIORITY_NODE]
        assert scheduler.current_priority is None

    def test_next_event_time_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(0.5, PRIORITY_NODE, lambda t: None)
        scheduler.schedule(0.75, PRIORITY_NODE, lambda t: None)
        assert scheduler.next_event_time() == 0.5
        first.cancel()
        assert scheduler.next_event_time() == 0.75


class TestCompaction:
    def test_compaction_drops_dead_entries_and_preserves_ordering(self):
        # Long churn/migration runs cancel many recurring streams; once the
        # dead entries outnumber the live ones the heap is compacted, and the
        # compaction must be invisible to the event ordering.
        scheduler = EventScheduler()
        fired = []
        live = []
        handles = []
        for i in range(200):
            time = 1.0 + (i % 37) * 0.25 + (i // 37) * 0.01
            handles.append(
                scheduler.schedule(
                    time, PRIORITY_NODE, lambda t, i=i: fired.append((t, i))
                )
            )
            live.append((time, i))
        # Cancel ~75% of the entries: well past the >50%-of-live threshold.
        for i, handle in enumerate(handles):
            if i % 4 != 0:
                handle.cancel()
        assert scheduler.compactions >= 1
        survivors = sorted(
            ((t, i) for t, i in live if i % 4 == 0),
        )
        # The heap physically shrank: dead entries remaining after the last
        # compaction stay below the re-trigger threshold instead of
        # accumulating without bound.
        assert scheduler.pending_events() == len(survivors)
        assert (
            len(scheduler) - scheduler.pending_events()
            < scheduler.COMPACT_MIN_CANCELLED
        )
        scheduler.run_until(100.0)
        # Same (time, seq) order as an uncompacted run would produce.
        assert fired == survivors

    def test_small_heaps_are_never_compacted(self):
        scheduler = EventScheduler()
        handles = [
            scheduler.schedule(1.0 + i, PRIORITY_NODE, lambda t: None)
            for i in range(20)
        ]
        for handle in handles:
            handle.cancel()
        assert scheduler.compactions == 0
        assert scheduler.pending_events() == 0

    def test_compaction_during_run_keeps_processing(self):
        # Cancelling from inside a callback (the lifecycle API does this)
        # may trigger a compaction mid-run; later events must still fire.
        scheduler = EventScheduler()
        fired = []
        doomed = [
            scheduler.schedule(5.0 + i * 0.01, PRIORITY_NODE, lambda t: None)
            for i in range(130)
        ]

        def cancel_all(now):
            fired.append("cancel")
            for handle in doomed:
                handle.cancel()

        scheduler.schedule(1.0, PRIORITY_NODE, cancel_all)
        scheduler.schedule(2.0, PRIORITY_NODE, lambda t: fired.append("after"))
        scheduler.run_until(10.0)
        assert fired == ["cancel", "after"]
        assert scheduler.compactions >= 1
        assert scheduler.pending_events() == 0
