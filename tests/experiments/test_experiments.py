"""Tests for the experiment harness (tiny configurations for speed)."""

import pytest

from repro.experiments import cli
from repro.experiments.common import (
    ExperimentResult,
    asymmetric_latency_matrix,
    config_with,
    format_table,
)
from repro.experiments.testbeds import (
    EMULAB_TESTBED,
    LOCAL_TESTBED,
    scaled_config,
    workload_scale_factors,
)
from repro.experiments import (
    churn,
    migration,
    fig06_sic_correlation_aggregate as fig06,
    fig08_single_node_fairness as fig08,
    fig10_multinode_comparison as fig10,
    overhead,
    related_work_comparison as related,
)


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("x", "demo")
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, b=4.5)
        assert result.column("a") == [1, 3]
        assert "demo" in result.to_table()

    def test_format_table_aligns_columns(self):
        table = format_table([{"name": "q", "value": 0.123456}, {"name": "qq", "value": 1.0}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "0.1235" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_notes_rendered(self):
        result = ExperimentResult("x", "demo")
        result.add_row(a=1)
        result.add_note("scaled down")
        assert "note: scaled down" in result.to_table()


class TestTestbeds:
    def test_profiles_match_table2(self):
        assert LOCAL_TESTBED.source_rate == 400.0
        assert EMULAB_TESTBED.num_processing_nodes == 18
        assert EMULAB_TESTBED.source_rate == 150.0

    @pytest.mark.parametrize("scale", ["small", "medium", "paper"])
    def test_scaled_config_is_valid(self, scale):
        config = scaled_config(scale)
        assert config.duration_seconds > 0
        assert workload_scale_factors(scale)["queries"] > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_config("huge")
        with pytest.raises(ValueError):
            workload_scale_factors("huge")

    def test_config_with_overrides_fields(self):
        config = scaled_config("small")
        other = config_with(config, capacity_fraction=0.123)
        assert other.capacity_fraction == 0.123
        assert other.duration_seconds == config.duration_seconds

    def test_asymmetric_latency_matrix_skews_per_direction(self):
        nodes = ["node-0", "node-1", "node-2"]
        matrix = asymmetric_latency_matrix(nodes, 0.05, spread=0.5)
        # Ordered pairs split into a slow and a fast direction whose mean is
        # the base latency.
        assert matrix.latency("node-0", "node-1") == pytest.approx(0.075)
        assert matrix.latency("node-1", "node-0") == pytest.approx(0.025)
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                forward = matrix.latency(a, b)
                back = matrix.latency(b, a)
                assert forward != back
                assert (forward + back) / 2 == pytest.approx(0.05)
        # updateSIC paths are skewed too; source ingest keeps the default.
        assert matrix.latency("coordinator", "node-1") == pytest.approx(0.075)
        assert matrix.latency("coordinator", "node-0") == pytest.approx(0.025)
        assert matrix.latency("some-source", "node-0") == pytest.approx(0.05)
        with pytest.raises(ValueError):
            asymmetric_latency_matrix(nodes, 0.05, spread=1.5)


class TestExperimentRunners:
    def test_fig06_rows_show_anticorrelation(self):
        result = fig06.run(
            scale="small",
            kinds=("count",),
            datasets=("gaussian",),
            overload_fractions=(0.3, 0.8),
            rate=60.0,
        )
        rows = {row["capacity_fraction"]: row for row in result.rows}
        assert rows[0.3]["sic"] < rows[0.8]["sic"]
        assert rows[0.3]["error"] > rows[0.8]["error"]

    def test_fig08_mean_sic_decreases_with_queries(self):
        result = fig08.run(scale="small", query_counts=(4, 10), source_rate=8.0)
        first, second = result.rows
        assert second["mean_sic"] < first["mean_sic"]
        assert all(row["jains_index"] > 0.8 for row in result.rows)

    def test_fig10_balance_sic_at_least_as_fair_as_random(self):
        result = fig10.run(
            scale="small", cases=(2,), num_nodes=3, total_fragments=24
        )
        by_shedder = {row["shedder"]: row for row in result.rows}
        assert (
            by_shedder["balance-sic"]["jains_index"]
            >= by_shedder["random"]["jains_index"] - 0.02
        )
        improvements = fig10.improvement_summary(result)
        assert "2" in improvements

    def test_churn_reports_every_lifecycle_phase(self):
        result = churn.run(scale="small", phase_seconds=4.0)
        phases = [row["phase"] for row in result.rows]
        assert phases == ["steady", "arrivals", "departures", "node-failure"]
        by_phase = {row["phase"]: row for row in result.rows}
        # Population and cluster sizes follow the lifecycle changes.
        assert by_phase["steady"]["queries"] == churn.INITIAL_QUERIES
        assert (
            by_phase["arrivals"]["queries"]
            == churn.INITIAL_QUERIES + churn.ARRIVING_QUERIES
        )
        assert (
            by_phase["departures"]["queries"]
            == churn.INITIAL_QUERIES
            + churn.ARRIVING_QUERIES
            - churn.DEPARTING_QUERIES
        )
        assert by_phase["node-failure"]["nodes"] == churn.NUM_NODES - 1
        # The fixed budgets plus arrivals deepen the overload; the failure
        # hurts fairness (the failed node's queries collapse towards 0).
        assert (
            by_phase["arrivals"]["shed_fraction"]
            > by_phase["steady"]["shed_fraction"]
        )
        assert all(0.0 < row["jains_index"] <= 1.0 for row in result.rows)
        assert (
            by_phase["node-failure"]["jains_index"]
            < by_phase["steady"]["jains_index"]
        )

    def test_migration_reports_fairness_within_tolerance_of_static(self):
        result = migration.run(scale="small", phase_seconds=4.0)
        phases = [row["phase"] for row in result.rows]
        assert phases == list(migration.PHASES)
        by_phase = {row["phase"]: row for row in result.rows}
        # The cluster shrinks by one node at the decommission and again at
        # the failure; the rejoin brings the failed id back.
        assert by_phase["steady"]["nodes"] == migration.NUM_NODES
        assert by_phase["decommission"]["nodes"] == migration.NUM_NODES - 1
        assert by_phase["failure"]["nodes"] == migration.NUM_NODES - 2
        assert by_phase["recovered"]["nodes"] == migration.NUM_NODES - 1
        # Graceful migration keeps fairness within tolerance of static
        # placement; so does the recovered state after the fail-rejoin
        # cycle (the failure/rejoin phases show the honest transient).
        for phase in ("steady", "decommission", "recovered"):
            row = by_phase[phase]
            assert abs(row["jains_index"] - row["static_jains"]) < 0.1
        # The crash transient is visible, and recovery undoes it.
        assert by_phase["failure"]["jains_index"] < by_phase["steady"]["jains_index"]
        assert (
            by_phase["recovered"]["jains_index"]
            > by_phase["rejoin"]["jains_index"]
        )

    def test_related_work_fit_is_unfair(self):
        result = related.run(scale="small")
        by_key = {(row["setup"], row["approach"]): row for row in result.rows}
        fit = by_key[("simple", "FIT [34]")]
        themis = by_key[("simple", "BALANCE-SIC")]
        assert fit["jains_index"] < 0.7
        assert fit["starved"] > 0
        assert themis["jains_index"] > 0.9

    def test_overhead_reports_both_shedders(self):
        result = overhead.run(scale="small", num_queries=8, num_nodes=2)
        shedders = {row["shedder"] for row in result.rows}
        assert shedders == {"balance-sic", "random"}
        assert all(row["shedder_invocations"] > 0 for row in result.rows)


class TestCli:
    def test_list_mode(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "overhead" in out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            cli.run_experiment("fig99")

    def test_registry_covers_every_figure(self):
        expected = {f"fig{n:02d}" for n in range(6, 15)}
        assert expected <= set(cli.EXPERIMENTS)
        assert {"related_work", "overhead"} <= set(cli.EXPERIMENTS)
