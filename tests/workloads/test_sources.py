"""Unit tests for data sources."""

import pytest

from repro.workloads.sources import (
    BurstySource,
    CpuSource,
    MemorySource,
    ValueSource,
)


class TestStreamSource:
    def test_rate_determines_tuple_count(self):
        source = ValueSource("s", rate=100.0, seed=0)
        tuples = source.generate(0.0, 1.0)
        assert len(tuples) == 100
        assert source.emitted_tuples == 100

    def test_fractional_rates_carry_over(self):
        source = ValueSource("s", rate=10.0, seed=0)
        counts = [len(source.generate(i * 0.25, (i + 1) * 0.25)) for i in range(8)]
        assert sum(counts) == 20  # 10 t/s over 2 s

    def test_timestamps_lie_within_the_interval(self):
        source = ValueSource("s", rate=50.0, seed=0)
        tuples = source.generate(2.0, 3.0)
        assert all(2.0 <= t.timestamp < 3.0 for t in tuples)

    def test_source_id_attached_to_every_tuple(self):
        source = ValueSource("my-source", rate=20.0, seed=0)
        assert all(t.source_id == "my-source" for t in source.generate(0.0, 1.0))

    def test_empty_interval_generates_nothing(self):
        source = ValueSource("s", rate=100.0, seed=0)
        assert source.generate(1.0, 1.0) == []

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            ValueSource("s", rate=0.0)


class TestPayloads:
    def test_value_source_payload(self):
        t = ValueSource("s", rate=10, dataset="gaussian", seed=1).generate(0, 1)[0]
        assert "v" in t.values and t.values["v"] >= 0

    def test_cpu_source_payload(self):
        t = CpuSource("s", monitored_id="m1", rate=10, seed=1).generate(0, 1)[0]
        assert t.values["id"] == "m1"
        assert 0 <= t.values["value"] <= 100

    def test_memory_source_payload(self):
        t = MemorySource("s", monitored_id="m1", rate=10, seed=1).generate(0, 1)[0]
        assert t.values["id"] == "m1"
        assert t.values["free"] > 0


class TestBurstySource:
    def test_bursts_increase_emitted_tuples(self):
        steady = ValueSource("a", rate=50.0, seed=3)
        bursty = BurstySource(
            ValueSource("b", rate=50.0, seed=3), burst_probability=1.0,
            burst_multiplier=10.0, seed=3,
        )
        steady_count = sum(len(steady.generate(i, i + 1)) for i in range(5))
        bursty_count = sum(len(bursty.generate(i, i + 1)) for i in range(5))
        assert bursty_count == pytest.approx(10 * steady_count, rel=0.05)
        assert bursty.bursts == 5

    def test_zero_probability_behaves_like_base(self):
        bursty = BurstySource(ValueSource("b", rate=40.0, seed=4),
                              burst_probability=0.0, seed=4)
        assert len(bursty.generate(0, 1)) == 40
        assert bursty.bursts == 0

    def test_base_rate_restored_after_burst(self):
        base = ValueSource("b", rate=20.0, seed=5)
        bursty = BurstySource(base, burst_probability=1.0, seed=5)
        bursty.generate(0, 1)
        assert base.rate == 20.0

    def test_exposes_source_protocol(self):
        bursty = BurstySource(ValueSource("b", rate=20.0, seed=6), seed=6)
        assert bursty.source_id == "b"
        assert bursty.rate == 20.0

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstySource(ValueSource("b", rate=1.0), burst_probability=2.0)
        with pytest.raises(ValueError):
            BurstySource(ValueSource("b", rate=1.0), burst_multiplier=0.5)
