"""Unit tests for workload population generation and budget sizing."""

import pytest

from repro.federation.deployment import RoundRobinPlacement
from repro.workloads.generators import (
    WorkloadSpec,
    compute_node_budgets,
    estimate_source_path_cost,
    generate_complex_workload,
    offered_cost_per_node,
)


def small_spec(**overrides):
    values = dict(
        num_queries=6,
        fragments_per_query=2,
        source_rate=10.0,
        sources_per_avg_all_fragment=2,
        machines_per_top5_fragment=1,
        seed=0,
    )
    values.update(overrides)
    return WorkloadSpec(**values)


class TestGenerateComplexWorkload:
    def test_generates_requested_number_of_queries(self):
        queries = generate_complex_workload(small_spec())
        assert len(queries) == 6
        assert len({q.query_id for q in queries}) == 6

    def test_kinds_cycle_through_the_mix(self):
        queries = generate_complex_workload(small_spec())
        kinds = {q.kind for q in queries}
        assert kinds == {"avg-all", "top5", "cov"}

    def test_fixed_fragment_count(self):
        queries = generate_complex_workload(small_spec(fragments_per_query=3))
        assert all(q.num_fragments == 3 for q in queries)

    def test_mixed_fragment_counts_drawn_from_sequence(self):
        queries = generate_complex_workload(
            small_spec(num_queries=30, fragments_per_query=(1, 2, 3))
        )
        counts = {q.num_fragments for q in queries}
        assert counts <= {1, 2, 3}
        assert len(counts) > 1

    def test_reproducible_for_a_seed(self):
        a = generate_complex_workload(small_spec(seed=5))
        b = generate_complex_workload(small_spec(seed=5))
        assert [q.num_fragments for q in a] == [q.num_fragments for q in b]

    def test_rejects_non_positive_population(self):
        with pytest.raises(ValueError):
            generate_complex_workload(small_spec(num_queries=0))

    def test_rejects_empty_fragment_choices(self):
        with pytest.raises(ValueError):
            generate_complex_workload(small_spec(fragments_per_query=()))


class TestCostEstimates:
    def test_path_cost_is_positive_and_counts_downstream_operators(self):
        queries = generate_complex_workload(small_spec())
        for query in queries:
            for fragment in query.fragments.values():
                assert estimate_source_path_cost(fragment) > 0.0

    def test_offered_cost_accounts_every_node_with_fragments(self):
        queries = generate_complex_workload(small_spec())
        node_ids = ["n0", "n1", "n2"]
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], node_ids
        )
        offered = offered_cost_per_node(queries, placement, shedding_interval=0.25)
        assert set(offered) <= set(node_ids)
        assert all(v > 0 for v in offered.values())

    def test_budgets_scale_with_capacity_fraction(self):
        queries = generate_complex_workload(small_spec())
        node_ids = ["n0", "n1"]
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], node_ids
        )
        half = compute_node_budgets(queries, placement, 0.25, 0.5, node_ids)
        full = compute_node_budgets(queries, placement, 0.25, 1.0, node_ids)
        for node in node_ids:
            assert half[node] == pytest.approx(full[node] * 0.5, rel=1e-6)

    def test_uniform_mode_gives_equal_budgets(self):
        queries = generate_complex_workload(small_spec())
        node_ids = ["n0", "n1", "n2"]
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], node_ids
        )
        budgets = compute_node_budgets(
            queries, placement, 0.25, 0.5, node_ids, mode="uniform"
        )
        assert len(set(round(b, 9) for b in budgets.values())) == 1

    def test_invalid_fraction_or_mode_rejected(self):
        queries = generate_complex_workload(small_spec())
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], ["n0"]
        )
        with pytest.raises(ValueError):
            compute_node_budgets(queries, placement, 0.25, 0.0, ["n0"])
        with pytest.raises(ValueError):
            compute_node_budgets(queries, placement, 0.25, 0.5, ["n0"], mode="magic")

    def test_nodes_without_fragments_get_minimum_budget(self):
        queries = generate_complex_workload(small_spec(num_queries=1))
        placement = RoundRobinPlacement().place(
            [f for q in queries for f in q.fragment_list()], ["n0"]
        )
        budgets = compute_node_budgets(
            queries, placement, 0.25, 0.5, ["n0", "unused"], minimum_budget=2.0
        )
        assert budgets["unused"] == 2.0
