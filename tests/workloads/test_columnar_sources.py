"""Columnar source generation ≡ seed per-tuple generation, byte for byte.

The columnar fast path (`generate_block` / `payload_columns` /
`sample_many`) must reproduce the seed per-tuple path exactly for equal
seeds: same emitted counts (including the fractional-rate carry), same
timestamps, same payload values in the same field order, and — after SIC
assignment — the same SIC values.  Two identically-seeded source instances
are driven through the same interval sequence, one per representation, and
every column is compared with ``==`` (no tolerance).
"""

import pytest

from repro.core._reference import ReferenceSicAssigner
from repro.core.sic import SicAssigner
from repro.core.tuples import Batch
from repro.workloads.datasets import DATASET_NAMES, make_dataset
from repro.workloads.sources import (
    BurstySource,
    CpuSource,
    MemorySource,
    ValueSource,
)

# Interval sequence with irregular lengths so the fractional carry is
# exercised: rate * length is rarely integral.
INTERVALS = [
    (0.0, 0.25),
    (0.25, 0.5),
    (0.5, 0.63),
    (0.63, 1.11),
    (1.11, 1.112),
    (1.112, 2.0),
    (2.0, 2.0),  # empty interval
    (2.0, 3.7),
]


def block_as_tuples(block):
    return [] if block is None else block.to_tuples()


def assert_tuples_identical(columnar, reference):
    assert len(columnar) == len(reference)
    for c, r in zip(columnar, reference):
        assert c.timestamp == r.timestamp
        assert c.sic == r.sic
        assert c.source_id == r.source_id
        assert c.values == r.values
        assert list(c.values) == list(r.values)  # field order too


class TestSampleManyEquivalence:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_sample_many_matches_sample_loop(self, name):
        fast = make_dataset(name, seed=7)
        slow = make_dataset(name, seed=7)
        for chunk in (1, 5, 64, 0, 17):
            assert fast.sample_many(chunk) == [slow.sample() for _ in range(chunk)]


class TestValueSourceEquivalence:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_generate_block_matches_generate(self, dataset):
        # 157.3 t/s: non-integral per-interval counts exercise the carry.
        columnar = ValueSource("s", rate=157.3, dataset=dataset, seed=3)
        per_tuple = ValueSource("s", rate=157.3, dataset=dataset, seed=3)
        for start, end in INTERVALS:
            block = columnar.generate_block(start, end)
            tuples = per_tuple.generate(start, end)
            assert_tuples_identical(block_as_tuples(block), tuples)
            assert columnar.emitted_tuples == per_tuple.emitted_tuples
            assert columnar._carry == per_tuple._carry


class TestMonitoringSourceEquivalence:
    def test_cpu_source(self):
        columnar = CpuSource("cpu0", monitored_id="n0", rate=149.9, seed=5)
        per_tuple = CpuSource("cpu0", monitored_id="n0", rate=149.9, seed=5)
        for start, end in INTERVALS:
            assert_tuples_identical(
                block_as_tuples(columnar.generate_block(start, end)),
                per_tuple.generate(start, end),
            )

    @pytest.mark.parametrize("dataset", ["planetlab", "gaussian"])
    def test_memory_source(self, dataset):
        # planetlab interleaves two RNG draws per tuple; gaussian takes the
        # generic scaled-value branch.
        columnar = MemorySource("mem0", monitored_id="n0", dataset=dataset, seed=5)
        per_tuple = MemorySource("mem0", monitored_id="n0", dataset=dataset, seed=5)
        for start, end in INTERVALS:
            assert_tuples_identical(
                block_as_tuples(columnar.generate_block(start, end)),
                per_tuple.generate(start, end),
            )


class TestBurstySourceEquivalence:
    def test_bursty_block_matches_generate(self):
        columnar = BurstySource(ValueSource("s", rate=91.7, seed=2), seed=9)
        per_tuple = BurstySource(ValueSource("s", rate=91.7, seed=2), seed=9)
        saw_burst = False
        for tick in range(120):
            start, end = tick * 0.25, (tick + 1) * 0.25
            block_tuples = block_as_tuples(columnar.generate_block(start, end))
            tuples = per_tuple.generate(start, end)
            assert_tuples_identical(block_tuples, tuples)
            saw_burst = saw_burst or columnar.bursts > 0
        assert columnar.bursts == per_tuple.bursts
        assert saw_burst, "the run must include at least one burst interval"
        assert columnar.emitted_tuples == per_tuple.emitted_tuples

    def test_custom_payload_builder_falls_back_exactly(self):
        # A source without a specialized payload_columns uses the transposing
        # default, which must also be byte-identical.
        from repro.workloads.sources import StreamSource

        def make():
            dist = make_dataset("mixed", seed=11)
            return StreamSource(
                "s", rate=83.3, payload_builder=lambda: {"a": dist.sample(), "b": 1}
            )

        columnar, per_tuple = make(), make()
        for start, end in INTERVALS:
            assert_tuples_identical(
                block_as_tuples(columnar.generate_block(start, end)),
                per_tuple.generate(start, end),
            )


class TestSicAssignmentEquivalence:
    def test_assign_block_matches_assign_and_seed_assigner(self):
        """Columnar stamping ≡ current assign ≡ seed per-tuple assigner."""
        rate = 211.3
        sources = 3
        rates = {f"s{i}": rate for i in range(sources)}

        def build():
            return [
                ValueSource(f"s{i}", rate=rate, seed=i) for i in range(sources)
            ]

        col_sources, fast_sources, seed_sources = build(), build(), build()
        col = SicAssigner("q", sources, stw_seconds=2.0, nominal_rates=rates)
        fast = SicAssigner("q", sources, stw_seconds=2.0, nominal_rates=rates)
        seed = ReferenceSicAssigner("q", sources, stw_seconds=2.0, nominal_rates=rates)
        for tick in range(40):
            start, end = tick * 0.25, (tick + 1) * 0.25
            for cs, fs, ss in zip(col_sources, fast_sources, seed_sources):
                block = cs.generate_block(start, end)
                col.assign_block(block)
                fast_tuples = fs.generate(start, end)
                fast.assign(fast_tuples)
                seed_tuples = ss.generate(start, end)
                seed.assign(seed_tuples)
                sics = list(block.sics)
                assert sics == [t.sic for t in fast_tuples]
                assert sics == [t.sic for t in seed_tuples]
                # Header SIC sums identically from either representation.
                assert (
                    Batch.from_block("q", block, created_at=end).sic
                    == Batch("q", fast_tuples, created_at=end).sic
                )

    def test_observe_run_matches_observe_many(self):
        from repro.core.sic import SourceRateEstimator

        run = SourceRateEstimator(stw_seconds=1.0)
        many = SourceRateEstimator(stw_seconds=1.0)
        chunks = [
            [0.1, 0.2, 0.3],
            [0.3, 0.3, 0.9],  # duplicate timestamps across the bucket merge
            [1.5],
            [2.0, 2.5, 2.5, 3.1],
            [9.9, 10.0],
        ]
        for chunk in chunks:
            run.observe_run("s", chunk)
            many.observe_many("s", chunk)
            assert run.tuples_per_stw("s") == many.tuples_per_stw("s")
        # Future single observations see identical state as well.
        run.observe("s", 10.4)
        many.observe("s", 10.4)
        assert run.tuples_per_stw("s") == many.tuples_per_stw("s")
