"""Unit tests for the evaluation datasets."""

import pytest

from repro.workloads.datasets import (
    DATASET_NAMES,
    ExponentialValues,
    GaussianValues,
    MixedValues,
    PlanetLabLikeValues,
    UniformValues,
    make_dataset,
)


class TestSyntheticDistributions:
    def test_gaussian_mean_is_about_50(self):
        dist = GaussianValues(seed=1)
        samples = dist.sample_many(5000)
        assert abs(sum(samples) / len(samples) - 50.0) < 2.0
        assert all(v >= 0.0 for v in samples)

    def test_uniform_range_and_mean(self):
        dist = UniformValues(seed=2)
        samples = dist.sample_many(5000)
        assert all(0.0 <= v <= 100.0 for v in samples)
        assert abs(sum(samples) / len(samples) - 50.0) < 3.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformValues(low=10, high=5)

    def test_exponential_mean_is_about_50(self):
        dist = ExponentialValues(seed=3)
        samples = dist.sample_many(20000)
        assert abs(sum(samples) / len(samples) - 50.0) < 3.0

    def test_exponential_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            ExponentialValues(mean=0.0)

    def test_mixed_draws_from_component_distributions(self):
        dist = MixedValues(seed=4)
        samples = dist.sample_many(2000)
        assert all(v >= 0.0 for v in samples)
        assert abs(sum(samples) / len(samples) - 50.0) < 10.0

    def test_seeded_distributions_are_reproducible(self):
        a = GaussianValues(seed=7).sample_many(10)
        b = GaussianValues(seed=7).sample_many(10)
        assert a == b


class TestPlanetLabLike:
    def test_values_bounded_to_utilisation_range(self):
        dist = PlanetLabLikeValues(seed=5)
        samples = dist.sample_many(3000)
        assert all(0.0 <= v <= 100.0 for v in samples)

    def test_temporal_correlation_is_present(self):
        dist = PlanetLabLikeValues(seed=6, burst_probability=0.0,
                                   level_shift_probability=0.0)
        samples = dist.sample_many(2000)
        mean = sum(samples) / len(samples)
        num = sum(
            (samples[i] - mean) * (samples[i + 1] - mean) for i in range(len(samples) - 1)
        )
        den = sum((v - mean) ** 2 for v in samples)
        autocorrelation = num / den if den else 0.0
        assert autocorrelation > 0.3

    def test_memory_free_is_anti_correlated_with_cpu(self):
        dist = PlanetLabLikeValues(seed=7)
        busy = sum(dist.memory_free_kb(95.0) for _ in range(200)) / 200
        idle = sum(dist.memory_free_kb(5.0) for _ in range(200)) / 200
        assert idle > busy


class TestFactory:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_factory_builds_every_dataset(self, name):
        dist = make_dataset(name, seed=0)
        assert dist.sample() >= 0.0

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("zipfian")
