"""Unit tests for the Table 1 workload builders."""

import pytest

from repro.workloads.aggregate import (
    AGGREGATE_KINDS,
    make_aggregate_query,
    make_avg_query,
    make_count_query,
    make_max_query,
)
from repro.workloads.complex import (
    make_avg_all_query,
    make_complex_query,
    make_cov_query,
    make_top5_query,
)
from repro.workloads.spec import WorkloadQuery


class TestAggregateWorkload:
    @pytest.mark.parametrize("kind", AGGREGATE_KINDS)
    def test_builders_produce_single_fragment_single_source(self, kind):
        query = make_aggregate_query(kind, query_id=f"t-{kind}", rate=100.0, seed=0)
        assert isinstance(query, WorkloadQuery)
        assert query.num_fragments == 1
        assert query.num_sources == 1
        assert query.root_fragment.is_root

    def test_convenience_wrappers(self):
        assert make_avg_query(query_id="a", seed=1).kind == "avg"
        assert make_max_query(query_id="b", seed=1).kind == "max"
        assert make_count_query(query_id="c", seed=1).kind == "count"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_aggregate_query("median")

    def test_nominal_rates_reported(self):
        query = make_avg_query(query_id="r", rate=123.0, seed=2)
        assert list(query.nominal_rates().values()) == [123.0]

    def test_query_ids_auto_generated_and_unique(self):
        a = make_avg_query(seed=3)
        b = make_avg_query(seed=3)
        assert a.query_id != b.query_id


class TestAvgAllQuery:
    def test_tree_structure(self):
        query = make_avg_all_query(
            query_id="t", num_fragments=3, sources_per_fragment=4, rate=10.0, seed=0
        )
        assert query.num_fragments == 3
        assert query.num_sources == 12
        roots = [f for f in query.fragments.values() if f.is_root]
        assert len(roots) == 1
        root = roots[0]
        # Both leaves stream into the root (tree, not chain).
        assert len(root.upstream_bindings) == 2

    def test_single_fragment_variant(self):
        query = make_avg_all_query(
            query_id="s", num_fragments=1, sources_per_fragment=3, rate=10.0, seed=0
        )
        assert query.num_fragments == 1
        assert query.root_fragment.is_root

    def test_paper_operator_count_scale(self):
        query = make_avg_all_query(
            query_id="ops", num_fragments=2, sources_per_fragment=10, rate=10.0, seed=0
        )
        # ~13 operators per fragment in the paper; receivers dominate.
        for fragment in query.fragments.values():
            assert fragment.num_operators >= 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_avg_all_query(num_fragments=0)
        with pytest.raises(ValueError):
            make_avg_all_query(sources_per_fragment=0)


class TestTop5Query:
    def test_chain_structure(self):
        query = make_top5_query(
            query_id="t5", num_fragments=3, machines_per_fragment=2, rate=5.0, seed=0
        )
        assert query.num_fragments == 3
        assert query.num_sources == 12  # 2 machines x 2 streams x 3 fragments
        order = query.fragment_order
        for upstream, downstream in zip(order, order[1:]):
            assert query.fragments[upstream].downstream_fragment_id == downstream
        assert query.fragments[order[-1]].is_root

    def test_paper_operator_count_scale(self):
        query = make_top5_query(
            query_id="t5ops", num_fragments=2, machines_per_fragment=10, rate=5.0, seed=0
        )
        for fragment in query.fragments.values():
            assert fragment.num_operators >= 25

    def test_bursty_flag_wraps_sources(self):
        query = make_top5_query(
            query_id="t5b", num_fragments=1, machines_per_fragment=1, rate=5.0,
            seed=0, bursty=True,
        )
        from repro.workloads.sources import BurstySource

        assert all(isinstance(s, BurstySource) for s in query.sources)


class TestCovQuery:
    def test_chain_structure_and_sources(self):
        query = make_cov_query(query_id="c", num_fragments=2, rate=10.0, seed=0)
        assert query.num_fragments == 2
        assert query.num_sources == 4
        assert query.fragments[query.fragment_order[-1]].is_root

    def test_single_fragment_has_output(self):
        query = make_cov_query(query_id="c1", num_fragments=1, rate=10.0, seed=0)
        names = [
            op.name
            for fragment in query.fragments.values()
            for op in fragment.operators.values()
        ]
        assert "output" in names


class TestDispatcher:
    @pytest.mark.parametrize("kind", ["avg-all", "top5", "cov"])
    def test_make_complex_query(self, kind):
        query = make_complex_query(kind, num_fragments=1, rate=5.0, seed=0)
        assert isinstance(query, WorkloadQuery)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_complex_query("join-only")


class TestWorkloadQuerySpec:
    def test_rejects_empty_fragments_or_sources(self):
        query = make_cov_query(query_id="spec", num_fragments=1, rate=5.0, seed=0)
        with pytest.raises(ValueError):
            WorkloadQuery(query_id="x", kind="cov", fragments={}, sources=query.sources)
        with pytest.raises(ValueError):
            WorkloadQuery(
                query_id="x", kind="cov", fragments=query.fragments, sources=[]
            )

    def test_fragment_list_follows_order(self):
        query = make_top5_query(query_id="ord", num_fragments=2,
                                machines_per_fragment=1, rate=5.0, seed=0)
        listed = [f.fragment_id for f in query.fragment_list()]
        assert listed == query.fragment_order
