"""Unit tests for the perf instrumentation subsystem."""

import pytest

from repro.perf import PerfRegistry, Stopwatch, default_registry


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.elapsed_seconds >= 0.0
        assert sw.laps == 1
        with sw:
            pass
        assert sw.laps == 2

    def test_manual_start_stop_returns_lap(self):
        sw = Stopwatch()
        sw.start()
        lap = sw.stop()
        assert lap >= 0.0
        assert sw.elapsed_seconds == pytest.approx(lap)

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed_seconds == 0.0
        assert sw.laps == 0
        assert not sw.running

    def test_fake_clock_measures_exactly(self):
        times = iter([1.0, 3.5])
        sw = Stopwatch(clock=lambda: next(times))
        sw.start()
        assert sw.stop() == pytest.approx(2.5)


class TestPerfRegistry:
    def test_counters_accumulate(self):
        reg = PerfRegistry()
        reg.incr("tuples", 5)
        reg.incr("tuples", 2)
        assert reg.counters["tuples"] == 7

    def test_timers_aggregate(self):
        reg = PerfRegistry()
        reg.record("select", 0.5)
        reg.record("select", 1.5)
        stat = reg.timers["select"]
        assert stat.count == 2
        assert stat.total_seconds == pytest.approx(2.0)
        assert stat.mean_seconds == pytest.approx(1.0)
        assert stat.min_seconds == pytest.approx(0.5)
        assert stat.max_seconds == pytest.approx(1.5)

    def test_time_context_manager(self):
        reg = PerfRegistry()
        with reg.time("tick"):
            pass
        assert reg.timers["tick"].count == 1

    def test_measure_returns_result(self):
        reg = PerfRegistry()
        assert reg.measure("add", lambda a, b: a + b, 2, 3) == 5
        assert reg.timers["add"].count == 1

    def test_summary_is_json_friendly_and_sorted(self):
        import json

        reg = PerfRegistry()
        reg.incr("b")
        reg.incr("a")
        reg.record("z", 0.1)
        reg.record("y", 0.2)
        summary = reg.summary()
        assert list(summary["counters"]) == ["a", "b"]
        assert list(summary["timers"]) == ["y", "z"]
        json.dumps(summary)  # must serialise

    def test_reset_clears_everything(self):
        reg = PerfRegistry()
        reg.incr("c")
        reg.record("t", 0.1)
        reg.reset()
        assert reg.counters == {}
        assert reg.timers == {}

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()
