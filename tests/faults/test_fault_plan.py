"""Unit tests for fault plans and the injector's deterministic policy."""

import pytest

from repro.faults import (
    CoordinatorCrash,
    FaultPlan,
    LossEpisode,
    NodeCrash,
    PartitionEpisode,
    SlowEpisode,
)


class TestEpisodeValidation:
    def test_loss_episode_rejects_bad_windows_and_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(episodes=(LossEpisode(start=-1.0, end=2.0),))
        with pytest.raises(ValueError):
            FaultPlan(episodes=(LossEpisode(start=2.0, end=2.0),))
        with pytest.raises(ValueError):
            FaultPlan(episodes=(LossEpisode(start=0.0, end=1.0, drop_probability=1.5),))
        with pytest.raises(ValueError):
            FaultPlan(
                episodes=(LossEpisode(start=0.0, end=1.0, duplicate_probability=-0.1),)
            )
        with pytest.raises(ValueError):
            FaultPlan(
                episodes=(LossEpisode(start=0.0, end=1.0, jitter_seconds=-0.01),)
            )

    def test_partition_episode_rejects_empty_and_overlapping_groups(self):
        with pytest.raises(ValueError):
            FaultPlan(episodes=(PartitionEpisode(start=0.0, end=1.0, group_a=()),))
        with pytest.raises(ValueError):
            FaultPlan(
                episodes=(
                    PartitionEpisode(
                        start=0.0, end=1.0, group_a=("a",), group_b=("a", "b")
                    ),
                )
            )

    def test_slow_episode_requires_positive_extra_latency(self):
        with pytest.raises(ValueError):
            FaultPlan(
                episodes=(
                    SlowEpisode(
                        start=0.0, end=1.0, endpoint="n", extra_latency_seconds=0.0
                    ),
                )
            )

    def test_crash_episodes_validate_fields(self):
        with pytest.raises(ValueError):
            FaultPlan(episodes=(NodeCrash(at=-1.0, node_id="n"),))
        with pytest.raises(ValueError):
            FaultPlan(episodes=(NodeCrash(at=1.0, node_id=""),))
        with pytest.raises(ValueError):
            FaultPlan(episodes=(NodeCrash(at=1.0, node_id="n", repair_after=0.0),))
        with pytest.raises(ValueError):
            FaultPlan(episodes=(CoordinatorCrash(at=1.0, query_id=""),))

    def test_plan_rejects_unknown_episode_types(self):
        with pytest.raises(TypeError):
            FaultPlan(episodes=("not-an-episode",))


class TestEpisodeSemantics:
    def test_loss_episode_window_is_half_open(self):
        episode = LossEpisode(start=1.0, end=2.0, drop_probability=0.5)
        assert not episode.active(0.99)
        assert episode.active(1.0)
        assert episode.active(1.99)
        assert not episode.active(2.0)

    def test_loss_episode_filters_kinds_and_endpoints(self):
        episode = LossEpisode(
            start=0.0,
            end=1.0,
            drop_probability=1.0,
            message_types=("data",),
            endpoints=("node-1",),
        )
        assert episode.matches("data", "node-1", "node-2")
        assert episode.matches("data", "node-0", "node-1")
        assert not episode.matches("result", "node-1", "node-2")
        assert not episode.matches("data", "node-0", "node-2")

    def test_partition_severs_cross_group_links_only(self):
        episode = PartitionEpisode(
            start=0.0, end=1.0, group_a=("a1", "a2"), group_b=("b1",)
        )
        assert episode.severs("a1", "b1")
        assert episode.severs("b1", "a2")
        assert not episode.severs("a1", "a2")
        assert not episode.severs("b1", "c")
        assert not episode.severs("c", "a1")  # c is in neither named group

    def test_empty_group_b_isolates_group_a_from_everything(self):
        episode = PartitionEpisode(start=0.0, end=1.0, group_a=("a",))
        assert episode.severs("a", "anything")
        assert episode.severs("anything", "a")
        assert not episode.severs("x", "y")

    def test_typed_views_preserve_plan_order(self):
        loss = LossEpisode(start=0.0, end=1.0, drop_probability=0.1)
        part = PartitionEpisode(start=1.0, end=2.0, group_a=("a",))
        crash = NodeCrash(at=3.0, node_id="n")
        plan = FaultPlan(seed=5, episodes=[crash, loss, part])
        assert plan.episodes == (crash, loss, part)
        assert plan.loss_episodes == (loss,)
        assert plan.partitions == (part,)
        assert plan.node_crashes == (crash,)
        assert plan.slow_episodes == ()
        assert plan.coordinator_crashes == ()

    def test_empty_plan_is_valid(self):
        plan = FaultPlan()
        assert plan.episodes == ()
        assert plan.seed == 0
