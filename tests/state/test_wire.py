"""Wire-format round trips: the multiprocess boundary must be invisible.

The sharded runtime's worker pool ships boundary messages between forked
replicas through :mod:`repro.state.wire`.  The contract mirrors the
checkpoint envelope's: columns are copied (never aliased), batch header SIC
travels verbatim (a ``split`` prefix header is not re-summable), storage
survives on both columnar backends, and the nested action tokens that *are*
the deterministic merge order pass through untouched.
"""

import pytest

from repro.core.columns import ColumnBlock, use_backend
from repro.core.tuples import Batch, Tuple
from repro.federation.network import (
    AckMessage,
    DataMessage,
    HeartbeatMessage,
    ResultMessage,
    SicUpdateMessage,
    _InFlight,
    _PendingSend,
)
from repro.state.wire import (
    entry_from_wire,
    entry_to_wire,
    message_from_wire,
    message_to_wire,
    pending_send_from_wire,
    pending_send_to_wire,
)

np = pytest.importorskip("numpy")


def make_block(n=6, source_id="src-0", objects=False):
    timestamps = [0.1 * i for i in range(n)]
    sics = [0.5 + 0.01 * i for i in range(n)]
    if objects:
        values = {"host": [f"machine-{i % 3}" for i in range(n)]}
    else:
        values = {"v": [float(i) * 1.5 for i in range(n)]}
    return ColumnBlock(timestamps, sics, values, source_id=source_id)


def assert_batches_equal(restored, original):
    assert restored.header.query_id == original.header.query_id
    assert restored.header.sic == original.header.sic
    assert restored.header.created_at == original.header.created_at
    assert restored.header.fragment_id == original.header.fragment_id
    assert restored.tuples == original.tuples


class TestMessageRoundTrip:
    @pytest.mark.parametrize("backend", ["numpy", "list"])
    @pytest.mark.parametrize("objects", [False, True], ids=["float", "object"])
    def test_data_message_round_trip(self, backend, objects):
        with use_backend(backend):
            batch = Batch.from_block(
                "q0", make_block(objects=objects), created_at=1.25,
                fragment_id="f0",
            )
            message = DataMessage(
                destination="node-1", batch=batch, target_fragment_id="f0"
            )
            restored = message_from_wire(message_to_wire(message))
        assert restored.kind == "data"
        assert restored.destination == "node-1"
        assert restored.target_fragment_id == "f0"
        assert_batches_equal(restored.batch, batch)

    def test_split_view_headers_travel_verbatim(self):
        # A split's prefix-derived header SIC cannot be recomputed from the
        # tuples (it came from the shared cumulative-SIC prefix); the wire
        # must carry it bit for bit, for both halves.
        batch = Batch.from_block("q0", make_block(n=8), created_at=0.5)
        head, tail = batch.split(3)
        for part in (head, tail):
            restored = message_from_wire(
                message_to_wire(DataMessage("node-0", part, "f1"))
            )
            assert_batches_equal(restored.batch, part)
        assert head.header.sic + tail.header.sic == pytest.approx(
            batch.header.sic
        )

    def test_round_trip_copies_instead_of_aliasing(self):
        block = make_block()
        batch = Batch.from_block("q0", block, created_at=0.0)
        restored = message_from_wire(
            message_to_wire(DataMessage("node-0", batch, "f0"))
        ).batch
        before = list(restored.tuples)
        # Mutating the sender's live columns must not reach the restored copy.
        block.timestamps[0] = 999.0
        block.values["v"][0] = -1.0
        assert list(restored.tuples) == before
        assert restored.tuples[0].timestamp != 999.0

    def test_cross_backend_restore_renormalizes(self):
        # Serialised under numpy, restored in a process running the list
        # backend (and vice versa): values identical either way.
        with use_backend("numpy"):
            batch = Batch.from_block("q0", make_block(), created_at=0.0)
            state = message_to_wire(ResultMessage("coord", batch))
            expected = list(batch.tuples)
        with use_backend("list"):
            restored = message_from_wire(state)
            assert list(restored.batch.tuples) == expected

    def test_control_message_round_trips(self):
        for message in (
            SicUpdateMessage("node-0", query_id="q1", sic_value=0.75, sent_at=2.0),
            HeartbeatMessage("detector", node_id="node-2", sent_at=3.5),
            AckMessage("node-1", link=("node-0", "node-1"), seq=17),
        ):
            restored = message_from_wire(message_to_wire(message))
            assert restored == message

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown message kind"):
            message_from_wire({"kind": "gossip", "destination": "x"})


class TestEntryRoundTrip:
    def test_action_token_passes_verbatim(self):
        # Lineage token: (time, ctx_priority, ctx_rank, k) where the rank
        # is a flattened chain (tp_levels, root, k_path) — the
        # deterministic merge order.
        token = (1.25, 1, (((1.2, 2), (0.0, -2)), (), (3, 0)), 4)
        batch = Batch("q0", [Tuple(1.0, 0.5, {"v": 1.0})])
        entry = _InFlight(
            1.3,
            token,
            DataMessage("node-1", batch, "f0"),
            link=("node-0", "node-1"),
            seq=9,
        )
        restored = entry_from_wire(entry_to_wire(entry))
        assert restored.deliver_at == entry.deliver_at
        assert restored.sequence == token
        assert restored.link == ("node-0", "node-1")
        assert restored.seq == 9
        assert restored.message.destination == "node-1"
        assert restored.message.batch.tuples == batch.tuples

    def test_control_entry_round_trips(self):
        entry = _InFlight(2.0, (2.0, 3, (), 0), None, control=("retransmit", 5))
        restored = entry_from_wire(entry_to_wire(entry))
        assert restored.message is None
        assert restored.control == ("retransmit", 5)
        assert restored.sequence == entry.sequence


class TestPendingSendRoundTrip:
    def test_retransmit_state_survives(self):
        batch = Batch("q0", [Tuple(1.0, 0.5, {"v": 2.0})])
        pending = _PendingSend(
            DataMessage("node-1", batch, "f0"), "node-0", rto=0.2
        )
        pending.attempts = 3
        restored = pending_send_from_wire(pending_send_to_wire(pending))
        assert restored.source == "node-0"
        assert restored.attempts == 3
        assert restored.rto == 0.2
        assert restored.message.batch.tuples == batch.tuples
