"""Tests for the checkpoint/restore state layer (``repro.state``).

The contract under test is *bit-exactness*: a snapshot → restore round-trip
must leave a component that produces identical future outputs (same floats,
same ordering) while sharing no mutable structure with the original.
"""

import random

import pytest

from repro.core.columns import ColumnBlock
from repro.core.shedding import BalanceSicShedder, RandomShedder, make_shedder
from repro.core.sic import SicAssigner, SourceRateEstimator
from repro.core.stw import ResultSicTracker, StwConfig
from repro.core.tuples import Batch, Tuple
from repro.state import CheckpointError, FragmentCheckpoint
from repro.state.checkpoint import batch_from_state, batch_to_state
from repro.streaming.operators.aggregate import Average
from repro.streaming.windows import CountWindow, ImmediateWindow, TimeWindow


def make_block(start, count, step=0.01, sic=1e-3, field="v", source="s"):
    return ColumnBlock(
        timestamps=[start + i * step for i in range(count)],
        sics=[sic] * count,
        values={field: [float(i) for i in range(count)]},
        source_id=source,
    )


def pane_fingerprint(panes):
    return [
        (p.start, p.end, p.sic, len(p), [(t.timestamp, t.sic, t.values) for t in p.tuples])
        for p in panes
    ]


class TestWindowRoundTrips:
    def test_time_window_columnar_round_trip_conserves_pane_sic(self):
        window = TimeWindow(1.0)
        for b in range(4):
            window.insert_block(make_block(b * 0.25, 50, sic=1e-3 * (b + 1)))
        state = window.snapshot()
        restored = TimeWindow(1.0)
        restored.restore(state)
        assert restored.pending_count() == window.pending_count()
        # Bit-exact conservation of the incrementally-maintained pane SIC.
        assert restored.pending_sic() == window.pending_sic()
        assert pane_fingerprint(restored.advance(10.0)) == pane_fingerprint(
            window.advance(10.0)
        )

    def test_time_window_sliding_per_tuple_round_trip(self):
        window = TimeWindow(1.0, slide_seconds=0.5)
        rng = random.Random(0)
        tuples = [
            Tuple(timestamp=i * 0.05, sic=rng.random() * 1e-3, values={"v": i})
            for i in range(60)
        ]
        window.insert(tuples)
        restored = TimeWindow(1.0, slide_seconds=0.5)
        restored.restore(window.snapshot())
        assert restored.pending_sic() == window.pending_sic()
        assert pane_fingerprint(restored.advance(10.0)) == pane_fingerprint(
            window.advance(10.0)
        )

    def test_time_window_restore_preserves_last_closed_end(self):
        window = TimeWindow(1.0, allowed_lateness=0.0)
        window.insert_block(make_block(0.0, 10))
        window.advance(1.0)  # closes pane [0, 1)
        restored = TimeWindow(1.0, allowed_lateness=0.0)
        restored.restore(window.snapshot())
        # A late tuple for the closed pane is dropped by both instances.
        late = [Tuple(timestamp=0.5, sic=1.0, values={})]
        window.insert(late)
        restored.insert(late)
        assert window.pending_count() == restored.pending_count() == 0

    def test_immediate_and_count_window_round_trips(self):
        immediate = ImmediateWindow()
        immediate.insert_block(make_block(0.0, 7))
        immediate.insert([Tuple(timestamp=1.0, sic=0.5, values={"v": 9})])
        restored = ImmediateWindow()
        restored.restore(immediate.snapshot())
        assert restored.pending_sic() == immediate.pending_sic()
        assert pane_fingerprint(restored.advance(2.0)) == pane_fingerprint(
            immediate.advance(2.0)
        )

        count = CountWindow(5)
        count.insert(
            [Tuple(timestamp=i * 0.1, sic=1e-2, values={"v": i}) for i in range(7)]
        )
        restored_count = CountWindow(5)
        restored_count.restore(count.snapshot())
        assert restored_count.pending_sic() == count.pending_sic()
        assert pane_fingerprint(restored_count.advance(1.0)) == pane_fingerprint(
            count.advance(1.0)
        )

    def test_restored_state_shares_no_structure(self):
        window = TimeWindow(1.0)
        block = make_block(0.0, 10)
        window.insert_block(block)
        restored = TimeWindow(1.0)
        restored.restore(window.snapshot())
        # Mutating the source block must not leak into the restored window.
        block.values["v"][0] = 999.0
        (pane,) = restored.advance(10.0)
        assert pane.tuples[0].values["v"] == 0.0

    def test_mismatched_window_config_rejected(self):
        window = TimeWindow(1.0)
        window.insert_block(make_block(0.0, 5))
        state = window.snapshot()
        with pytest.raises(CheckpointError):
            TimeWindow(2.0).restore(state)
        with pytest.raises(CheckpointError):
            ImmediateWindow().restore(state)
        with pytest.raises(CheckpointError):
            CountWindow(5).restore(state)
        count_state = CountWindow(5).snapshot()
        with pytest.raises(CheckpointError):
            CountWindow(6).restore(count_state)


class TestOperatorRoundTrip:
    def test_aggregate_round_trip_emits_identical_future_output(self):
        def feed(operator, start):
            operator.ingest_block(make_block(start, 40, step=0.02, sic=2e-3))

        original = Average("v", window_seconds=1.0)
        feed(original, 0.2)
        restored = Average("v", window_seconds=1.0)
        restored.restore(original.snapshot())
        assert restored.pending_sic() == original.pending_sic()
        feed(original, 1.1)
        feed(restored, 1.1)
        out_a = original.advance(5.0)
        out_b = restored.advance(5.0)
        assert [(t.timestamp, t.sic, t.values) for t in out_a] == [
            (t.timestamp, t.sic, t.values) for t in out_b
        ]
        assert original.lost_sic == restored.lost_sic

    def test_operator_type_mismatch_rejected(self):
        original = Average("v")
        state = original.snapshot()
        other = Average("w")
        with pytest.raises(CheckpointError):
            other.restore(state)


class TestEstimatorAndTrackerRoundTrips:
    def test_estimator_round_trip_returns_identical_estimates(self):
        original = SourceRateEstimator(stw_seconds=2.0)
        original.seed_rate("a", 100.0)
        for i in range(50):
            original.observe("a", i * 0.05, count=3)
            original.observe("b", i * 0.05, count=1)
        restored = SourceRateEstimator(stw_seconds=2.0)
        restored.restore(original.snapshot())
        for source in ("a", "b"):
            assert restored.tuples_per_stw(source) == original.tuples_per_stw(
                source
            )
        # Future observations evolve identically (bucket expiry included).
        for i in range(50, 80):
            original.observe("a", i * 0.05, count=2)
            restored.observe("a", i * 0.05, count=2)
        assert restored.tuples_per_stw("a") == original.tuples_per_stw("a")

    def test_estimator_config_mismatch_rejected(self):
        original = SourceRateEstimator(stw_seconds=2.0)
        with pytest.raises(ValueError):
            SourceRateEstimator(stw_seconds=1.0).restore(original.snapshot())

    def test_assigner_round_trip_stamps_identically(self):
        original = SicAssigner("q", 2, stw_seconds=2.0, nominal_rates={"s": 40.0})
        original.assign_block(make_block(0.0, 20))
        restored = SicAssigner("q", 2, stw_seconds=2.0)
        restored.restore(original.snapshot())
        block_a = make_block(0.5, 20)
        block_b = make_block(0.5, 20)
        original.assign_block(block_a)
        restored.assign_block(block_b)
        assert list(block_a.sics) == list(block_b.sics)

    def test_tracker_round_trip_preserves_series(self):
        config = StwConfig(stw_seconds=2.0, slide_seconds=0.25)
        original = ResultSicTracker("q", config)
        for i in range(20):
            original.record_result(i * 0.25, 0.01 * i)
            original.snapshot(i * 0.25)
        restored = ResultSicTracker("q", config)
        restored.restore_state(original.snapshot_state())
        assert restored.history == original.history
        assert restored.current_sic(5.0) == original.current_sic(5.0)


class TestShedderRoundTrip:
    @pytest.mark.parametrize("name", ["balance-sic", "random"])
    def test_rng_state_round_trip_replays_decisions(self, name):
        def batches(seed):
            rng = random.Random(seed)
            return [
                Batch(
                    f"q{i % 3}",
                    [
                        Tuple(timestamp=i * 0.1 + j * 1e-3, sic=rng.random() * 1e-3, values={})
                        for j in range(10)
                    ],
                )
                for i in range(12)
            ]

        reported = {"q0": 0.2, "q1": 0.2, "q2": 0.2}
        original = make_shedder(name, seed=3)
        # Consume some RNG so the round-trip captures a mid-run state.
        original.shed(batches(0), 30, reported)
        restored = make_shedder(name, seed=999)
        restored.restore(original.snapshot())
        decision_a = original.shed(batches(1), 30, reported)
        decision_b = restored.shed(batches(1), 30, reported)
        assert [b.batch_id for b in decision_a.kept] != []
        assert [len(b) for b in decision_a.kept] == [len(b) for b in decision_b.kept]
        assert [b.query_id for b in decision_a.kept] == [
            b.query_id for b in decision_b.kept
        ]
        assert decision_a.shed_tuples == decision_b.shed_tuples

    def test_shedder_name_mismatch_rejected(self):
        state = BalanceSicShedder(seed=0).snapshot()
        with pytest.raises(ValueError):
            RandomShedder(seed=0).restore(state)


class TestBatchState:
    def test_split_batch_header_sic_round_trips_verbatim(self):
        tuples = [
            Tuple(timestamp=i * 0.01, sic=0.1 / 3.0, values={"v": i})
            for i in range(9)
        ]
        head, tail = Batch("q", tuples).split(4)
        for piece in (head, tail):
            restored = batch_from_state(batch_to_state(piece))
            # The prefix-derived header must survive exactly, not be re-summed.
            assert restored.header.sic == piece.header.sic
            assert [t.values for t in restored.tuples] == [
                t.values for t in piece.tuples
            ]

    def test_columnar_batch_round_trip(self):
        block = make_block(0.0, 16, sic=2e-3)
        batch = Batch.from_block("q", block, created_at=1.0, fragment_id="q/f0")
        head, tail = batch.split(5)
        restored = batch_from_state(batch_to_state(tail))
        assert restored.is_columnar
        assert len(restored) == len(tail)
        assert restored.header.sic == tail.header.sic
        assert restored.fragment_id == "q/f0"


class TestEnvelope:
    def make_envelope(self, **overrides):
        values = dict(
            fragment_id="q/f0",
            query_id="q",
            created_at=1.0,
            fragment_state={"operators": {}},
        )
        values.update(overrides)
        return FragmentCheckpoint(**values)

    def test_valid_envelope_passes(self):
        assert self.make_envelope().validate() is not None

    def test_version_mismatch_rejected(self):
        with pytest.raises(CheckpointError):
            self.make_envelope(version=99).validate()

    def test_missing_operator_state_rejected(self):
        with pytest.raises(CheckpointError):
            self.make_envelope(fragment_state={}).validate()

    def test_negative_pending_rejected(self):
        with pytest.raises(CheckpointError):
            self.make_envelope(pending_tuples=-1).validate()
