"""Unit tests for the simulation clock, config, results and simulator."""

import pytest

from repro.core.stw import StwConfig
from repro.simulation.clock import SimulationClock
from repro.simulation.config import SimulationConfig
from repro.simulation.results import NodeSummary, RunResult
from repro.simulation.simulator import Simulator
from repro.streaming.engine import LocalEngine
from repro.workloads.complex import make_cov_query


class TestSimulationClock:
    def test_advance_and_elapsed(self):
        clock = SimulationClock(0.25)
        assert clock.now == 0.0
        clock.advance()
        clock.advance()
        assert clock.now == pytest.approx(0.5)
        assert clock.ticks == 2
        assert clock.elapsed == pytest.approx(0.5)

    def test_iterate_covers_duration(self):
        clock = SimulationClock(0.25)
        times = list(clock.iterate(1.0))
        assert len(times) == 4
        assert times[-1] == pytest.approx(1.0)

    def test_is_multiple_of(self):
        clock = SimulationClock(0.25)
        clock.advance()  # 0.25
        assert clock.is_multiple_of(0.25)
        assert not clock.is_multiple_of(1.0)

    def test_reset(self):
        clock = SimulationClock(0.5)
        clock.advance()
        clock.reset()
        assert clock.now == 0.0 and clock.ticks == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimulationClock(0.0)
        with pytest.raises(ValueError):
            list(SimulationClock(0.25).iterate(0.0))
        with pytest.raises(ValueError):
            SimulationClock(0.25).is_multiple_of(0.0)


class TestSimulationConfig:
    def test_defaults_are_valid(self):
        config = SimulationConfig()
        assert config.total_seconds == config.duration_seconds + config.warmup_seconds
        assert config.total_ticks == int(round(config.total_seconds / 0.25))
        assert isinstance(config.stw_config(), StwConfig)

    def test_warmup_ticks(self):
        config = SimulationConfig(warmup_seconds=5.0, shedding_interval=0.25)
        assert config.warmup_ticks == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_seconds": 0},
            {"warmup_seconds": -1},
            {"shedding_interval": 0},
            {"stw_seconds": 0.1, "shedding_interval": 0.25},
            {"capacity_fraction": 0},
            {"network_latency_seconds": -1},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestRunResult:
    def _result(self):
        return RunResult(
            shedder="BalanceSicShedder",
            duration_seconds=10.0,
            per_query_sic={"q1": 0.4, "q2": 0.4, "q3": 0.2},
            node_summaries=[
                NodeSummary("n0", 1000, 600, 400, 30, 40, 30, 0.03),
                NodeSummary("n1", 500, 500, 0, 0, 40, 0, 0.0),
            ],
        )

    def test_fairness_metrics(self):
        result = self._result()
        assert 0.0 < result.jains_index <= 1.0
        assert result.mean_sic == pytest.approx(1.0 / 3)
        assert result.std_sic > 0.0
        assert result.fairness().count == 3

    def test_shed_totals(self):
        result = self._result()
        assert result.total_received_tuples == 1500
        assert result.total_shed_tuples == 400
        assert result.shed_fraction == pytest.approx(400 / 1500)

    def test_shedder_time(self):
        result = self._result()
        assert result.mean_shedder_time == pytest.approx(0.001)

    def test_summary_row_keys(self):
        row = self._result().summary_row()
        assert {"shedder", "queries", "mean_sic", "std_sic", "jains_index",
                "shed_fraction"} <= set(row)

    def test_node_summary_properties(self):
        summary = NodeSummary("n0", 100, 60, 40, 5, 10, 5, 0.01)
        assert summary.shed_fraction == pytest.approx(0.4)
        assert summary.mean_shedder_time == pytest.approx(0.002)
        assert NodeSummary("n1", 0, 0, 0, 0, 0, 0, 0.0).shed_fraction == 0.0


class TestSimulatorAndLocalEngine:
    def test_local_engine_end_to_end(self):
        config = SimulationConfig(
            duration_seconds=6.0, warmup_seconds=2.0, stw_seconds=4.0,
            capacity_fraction=0.5, seed=1,
        )
        engine = LocalEngine(config)
        engine.add_queries(
            make_cov_query(query_id=f"e2e-{i}", num_fragments=1, rate=60.0, seed=i)
            for i in range(3)
        )
        result = engine.run()
        assert len(result.per_query_sic) == 3
        assert 0.0 < result.mean_sic < 1.0
        assert result.shed_fraction > 0.0
        assert result.messages_sent > 0
        assert all(len(series) > 0 for series in result.sic_time_series.values())

    def test_local_engine_requires_queries(self):
        with pytest.raises(ValueError):
            LocalEngine().run()

    def test_local_engine_validates_query_protocol(self):
        engine = LocalEngine()
        with pytest.raises(ValueError):
            engine.add_query(object())

    def test_simulator_collects_node_summaries(self):
        from repro.experiments.common import build_federation

        config = SimulationConfig(
            duration_seconds=4.0, warmup_seconds=2.0, stw_seconds=4.0,
            capacity_fraction=0.5, seed=2,
        )
        queries = [
            make_cov_query(query_id=f"sim-{i}", num_fragments=2, rate=40.0, seed=i)
            for i in range(2)
        ]
        system = build_federation(queries, num_nodes=2, config=config)
        result = Simulator(system, config).run()
        assert len(result.node_summaries) == 2
        assert result.duration_seconds == config.duration_seconds

    def test_simulator_records_perf_registry(self):
        from repro.experiments.common import build_federation
        from repro.perf import PerfRegistry

        config = SimulationConfig(
            duration_seconds=2.0, warmup_seconds=1.0, stw_seconds=2.0,
            capacity_fraction=0.5, runtime="lockstep", seed=3,
        )
        queries = [
            make_cov_query(query_id="perf-0", num_fragments=1, rate=40.0, seed=0)
        ]
        system = build_federation(queries, num_nodes=1, config=config)
        registry = PerfRegistry()
        Simulator(system, config, perf_registry=registry).run()
        # Per-tick timers exist on the lockstep driver only; the event
        # driver has no global tick to time.
        assert registry.timers["simulator.tick"].count == config.total_ticks
        assert registry.timers["simulator.run"].count == 1
        assert registry.counters["simulator.ticks"] == config.total_ticks
        assert (
            registry.timers["simulator.run"].total_seconds
            >= registry.timers["simulator.tick"].total_seconds * 0.5
        )

    def test_simulator_records_perf_registry_event_runtime(self):
        from repro.experiments.common import build_federation
        from repro.perf import PerfRegistry

        config = SimulationConfig(
            duration_seconds=2.0, warmup_seconds=1.0, stw_seconds=2.0,
            capacity_fraction=0.5, runtime="event", seed=3,
        )
        queries = [
            make_cov_query(query_id="perf-1", num_fragments=1, rate=40.0, seed=0)
        ]
        system = build_federation(queries, num_nodes=1, config=config)
        registry = PerfRegistry()
        Simulator(system, config, perf_registry=registry).run()
        assert registry.timers["simulator.run"].count == 1
        assert registry.counters["simulator.ticks"] == config.total_ticks
        assert "simulator.tick" not in registry.timers
