"""Unit tests for the source time window accounting."""

import pytest

from repro.core.stw import ResultSicTracker, StwConfig, StwRegistry
from repro.core.tuples import Batch, Tuple


class TestStwConfig:
    def test_defaults_match_paper(self):
        config = StwConfig()
        assert config.stw_seconds == 10.0
        assert config.slide_seconds == 0.25

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            StwConfig(stw_seconds=0)
        with pytest.raises(ValueError):
            StwConfig(slide_seconds=0)

    def test_rejects_slide_larger_than_stw(self):
        with pytest.raises(ValueError):
            StwConfig(stw_seconds=1.0, slide_seconds=2.0)


class TestResultSicTracker:
    def test_no_events_gives_zero(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 0.25))
        assert tracker.current_sic(now=5.0) == 0.0

    def test_perfect_processing_approaches_one(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 1.0))
        # One result per second, each carrying 1/10 of the STW's information.
        for second in range(1, 21):
            tracker.record_result(timestamp=float(second), sic=0.1)
        assert tracker.current_sic(now=20.0) == pytest.approx(1.0, abs=0.11)

    def test_degraded_processing_scales_with_kept_fraction(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 1.0))
        for second in range(1, 21):
            tracker.record_result(timestamp=float(second), sic=0.05)  # half kept
        assert tracker.current_sic(now=20.0) == pytest.approx(0.5, abs=0.06)

    def test_old_events_expire(self):
        tracker = ResultSicTracker("q", StwConfig(stw_seconds=2.0, slide_seconds=1.0))
        tracker.record_result(timestamp=1.0, sic=1.0)
        assert tracker.current_sic(now=1.5) > 0.0
        assert tracker.current_sic(now=10.0) == 0.0

    def test_coverage_normalisation_before_full_stw(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 1.0))
        # Only two seconds of history: 0.2 of information observed over a
        # coverage of roughly 0.2-0.3 of the STW -> close to 1, not 0.2.
        tracker.record_result(timestamp=1.0, sic=0.1)
        tracker.record_result(timestamp=2.0, sic=0.1)
        assert tracker.current_sic(now=2.0) > 0.5

    def test_negative_sic_rejected(self):
        tracker = ResultSicTracker("q", StwConfig())
        with pytest.raises(ValueError):
            tracker.record_result(timestamp=1.0, sic=-0.1)

    def test_snapshot_history_and_mean(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 1.0))
        for second in range(1, 11):
            tracker.record_result(timestamp=float(second), sic=0.1)
            tracker.snapshot(now=float(second))
        assert len(tracker.history) == 10
        assert tracker.mean_sic() > 0.0
        assert tracker.mean_sic(skip_initial=5) >= tracker.mean_sic() - 1e-9

    def test_record_batch_accounts_all_tuples(self):
        tracker = ResultSicTracker("q", StwConfig(10.0, 1.0))
        batch = Batch("q", [Tuple(1.0, 0.2, {}), Tuple(1.5, 0.3, {})])
        tracker.record_batch(batch)
        assert tracker.current_sic(now=2.0) > 0.0


class TestStwRegistry:
    def test_tracker_created_on_demand(self):
        registry = StwRegistry(StwConfig())
        assert "q1" not in registry
        tracker = registry.tracker("q1")
        assert "q1" in registry
        assert registry.tracker("q1") is tracker

    def test_record_batch_routes_to_query_tracker(self):
        registry = StwRegistry(StwConfig(10.0, 1.0))
        registry.record_batch(Batch("q1", [Tuple(1.0, 0.5, {})]))
        registry.record_batch(Batch("q2", [Tuple(1.0, 0.1, {})]))
        values = registry.current_sic_values(now=1.5)
        assert values["q1"] > values["q2"]

    def test_snapshot_all_and_mean(self):
        registry = StwRegistry(StwConfig(10.0, 1.0))
        registry.record_batch(Batch("q1", [Tuple(1.0, 0.5, {})]))
        registry.snapshot_all(now=1.0)
        means = registry.mean_sic_per_query()
        assert set(means) == {"q1"}
        assert len(registry) == 1
