"""Unit tests for Algorithm 1 (BALANCE-SIC tuple selection)."""

import random

import pytest

from repro.core.balance_sic import (
    BalanceSicConfig,
    BalanceSicPolicy,
    SelectionStrategy,
    ShedDecision,
)
from repro.core.tuples import Batch, Tuple


def make_batch(query_id, tuples_count, sic_per_tuple, ts=0.0):
    tuples = [
        Tuple(timestamp=ts + i * 0.01, sic=sic_per_tuple, values={"v": i})
        for i in range(tuples_count)
    ]
    return Batch(query_id, tuples)


class TestConfig:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            BalanceSicConfig(selection_strategy="bogus")

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            BalanceSicConfig(epsilon=-1.0)


class TestUnderload:
    def test_everything_kept_when_capacity_sufficient(self):
        policy = BalanceSicPolicy()
        batches = [make_batch("q1", 5, 0.01), make_batch("q2", 5, 0.01)]
        decision = policy.select(batches, capacity=100, reported_sic={})
        assert decision.kept_tuples == 10
        assert decision.shed_tuples == 0
        assert not decision.shed

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BalanceSicPolicy().select([], capacity=-1, reported_sic={})

    def test_empty_buffer_returns_empty_decision(self):
        decision = BalanceSicPolicy().select([], capacity=10, reported_sic={})
        assert decision.kept == [] and decision.shed == []


class TestCapacityRespected:
    def test_kept_tuples_never_exceed_capacity(self):
        policy = BalanceSicPolicy()
        batches = [make_batch(f"q{i}", 20, 0.005) for i in range(5)]
        decision = policy.select(batches, capacity=30, reported_sic={})
        assert decision.kept_tuples <= 30
        assert decision.kept_tuples + decision.shed_tuples == 100

    def test_capacity_fully_used_when_overloaded(self):
        policy = BalanceSicPolicy()
        batches = [make_batch(f"q{i}", 20, 0.005) for i in range(5)]
        decision = policy.select(batches, capacity=30, reported_sic={})
        # Splitting is enabled by default, so the capacity is filled exactly.
        assert decision.kept_tuples == 30

    def test_no_splitting_stays_at_batch_granularity(self):
        policy = BalanceSicPolicy(BalanceSicConfig(allow_batch_splitting=False))
        batches = [make_batch("q1", 20, 0.005), make_batch("q2", 20, 0.005)]
        decision = policy.select(batches, capacity=30, reported_sic={})
        assert decision.kept_tuples in (20, 30)
        assert all(len(b) == 20 for b in decision.kept)


class TestBalancing:
    def test_most_degraded_query_is_served_first(self):
        policy = BalanceSicPolicy()
        batches = [make_batch("low", 10, 0.01), make_batch("high", 10, 0.01)]
        reported = {"low": 0.1, "high": 0.8}
        decision = policy.select(batches, capacity=10, reported_sic=reported)
        kept_per_query = decision.kept_sic_per_query()
        assert kept_per_query.get("low", 0.0) > kept_per_query.get("high", 0.0)

    def test_projection_subtracts_buffered_sic(self):
        config = BalanceSicConfig(use_projection=True)
        policy = BalanceSicPolicy(config)
        # Same reported SIC; q1 has much more SIC waiting in the buffer, so
        # after projection q1 looks *more* degraded is false — both project to
        # the same baseline minus their own buffered SIC.  The decision should
        # still keep total tuples within capacity and not crash.
        batches = [make_batch("q1", 10, 0.05), make_batch("q2", 10, 0.01)]
        decision = policy.select(batches, capacity=10, reported_sic={"q1": 0.5, "q2": 0.5})
        assert decision.kept_tuples == 10

    def test_equal_queries_share_capacity_roughly_equally(self):
        policy = BalanceSicPolicy(rng=random.Random(1))
        batches = []
        for q in range(4):
            for b in range(5):
                batches.append(make_batch(f"q{q}", 10, 0.002, ts=b))
        decision = policy.select(batches, capacity=100, reported_sic={})
        kept = decision.kept_sic_per_query()
        values = [kept.get(f"q{q}", 0.0) for q in range(4)]
        assert max(values) <= 2.5 * min(values) + 1e-9

    def test_highest_sic_batches_preferred_within_query(self):
        policy = BalanceSicPolicy()
        low = make_batch("q", 10, 0.001)
        high = make_batch("q", 10, 0.01)
        decision = policy.select([low, high], capacity=10, reported_sic={})
        assert len(decision.kept) == 1
        assert decision.kept[0].sic == pytest.approx(high.sic)

    def test_lowest_sic_strategy_inverts_preference(self):
        policy = BalanceSicPolicy(
            BalanceSicConfig(selection_strategy=SelectionStrategy.LOWEST_SIC)
        )
        low = make_batch("q", 10, 0.001)
        high = make_batch("q", 10, 0.01)
        decision = policy.select([low, high], capacity=10, reported_sic={})
        assert decision.kept[0].sic == pytest.approx(low.sic)

    def test_queries_without_buffered_tuples_still_act_as_targets(self):
        policy = BalanceSicPolicy()
        batches = [make_batch("q1", 100, 0.001)]
        # q2 is known via the coordinator but has nothing buffered here; it
        # still serves as the comparison point q'' for the first iteration,
        # and the spare capacity is then used up by q1 (full utilisation).
        decision = policy.select(
            batches, capacity=50, reported_sic={"q1": 0.0, "q2": 0.02}
        )
        assert decision.kept_tuples == 50
        assert decision.iterations >= 2
        assert decision.projected_sic["q1"] >= 0.02

    def test_catch_up_stops_at_target_when_capacity_remains_for_others(self):
        # Projection disabled so the reported SIC values are used directly as
        # the starting point; q1 is behind and q2 ahead, and with fine-grained
        # batches both converge to nearly equal projected values.
        policy = BalanceSicPolicy(
            BalanceSicConfig(use_projection=False), rng=random.Random(3)
        )
        batches = [make_batch("q1", 5, 0.002, ts=i) for i in range(10)]
        batches += [make_batch("q2", 5, 0.002, ts=i) for i in range(10)]
        decision = policy.select(
            batches, capacity=60, reported_sic={"q1": 0.0, "q2": 0.04}
        )
        projected = decision.projected_sic
        assert decision.kept_tuples == 60
        assert abs(projected["q1"] - projected["q2"]) < 0.025


class TestShedDecision:
    def test_total_tuples_property(self):
        decision = ShedDecision(kept_tuples=3, shed_tuples=7)
        assert decision.total_tuples == 10

    def test_iterations_counted(self):
        policy = BalanceSicPolicy()
        batches = [make_batch(f"q{i}", 10, 0.01) for i in range(3)]
        decision = policy.select(batches, capacity=15, reported_sic={})
        assert decision.iterations >= 1

    def test_shed_batches_are_the_complement_of_kept(self):
        policy = BalanceSicPolicy(BalanceSicConfig(allow_batch_splitting=False))
        batches = [make_batch(f"q{i}", 10, 0.01) for i in range(4)]
        decision = policy.select(batches, capacity=20, reported_sic={})
        kept_ids = {b.batch_id for b in decision.kept}
        shed_ids = {b.batch_id for b in decision.shed}
        assert kept_ids.isdisjoint(shed_ids)
        assert kept_ids | shed_ids == {b.batch_id for b in batches}


class TestPaperExample:
    def test_figure3_single_node_example(self):
        """Figure 3: four queries, capacity 10, tuples with per-source SIC.

        Tuples are offered as single-tuple batches so the algorithm can select
        at the same granularity as the paper's walk-through.
        """
        policy = BalanceSicPolicy(rng=random.Random(0))
        # Source rates (tuples per STW of 1 s): q1: 20, q2: 30, q3: 10,
        # q4: two sources of 20 and 40.  SIC values follow Equation 1.
        batches = []
        batches += [make_batch("q1", 1, 1.0 / 20.0, ts=i) for i in range(20)]
        batches += [make_batch("q2", 1, 1.0 / 30.0, ts=i) for i in range(30)]
        batches += [make_batch("q3", 1, 1.0 / 10.0, ts=i) for i in range(10)]
        batches += [make_batch("q4", 1, 1.0 / (20.0 * 2), ts=i) for i in range(20)]
        batches += [make_batch("q4", 1, 1.0 / (40.0 * 2), ts=i) for i in range(40)]
        decision = policy.select(batches, capacity=10, reported_sic={})
        assert decision.kept_tuples == 10
        projected = decision.projected_sic
        # All queries converge to roughly the same SIC value (0.1 in the
        # paper's example); nobody is starved and nobody exceeds ~0.2.
        for query_id in ("q1", "q2", "q3", "q4"):
            assert projected[query_id] >= 0.05
            assert projected[query_id] <= 0.2
