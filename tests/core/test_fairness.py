"""Unit tests for Jain's Fairness Index and fairness summaries."""

import pytest

from repro.core.fairness import jains_index, relative_spread, summarize_fairness


class TestJainsIndex:
    def test_equal_values_give_one(self):
        assert jains_index([0.4, 0.4, 0.4]) == pytest.approx(1.0)

    def test_single_winner_gives_one_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_range_is_bounded(self):
        values = [0.9, 0.1, 0.5, 0.7]
        index = jains_index(values)
        assert 1.0 / len(values) <= index <= 1.0

    def test_scale_invariance(self):
        values = [0.2, 0.4, 0.8]
        assert jains_index(values) == pytest.approx(jains_index([v * 10 for v in values]))

    def test_empty_and_all_zero_conventions(self):
        assert jains_index([]) == 1.0
        assert jains_index([0.0, 0.0]) == 1.0

    def test_known_value(self):
        # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
        assert jains_index([1, 2, 3]) == pytest.approx(36.0 / 42.0)


class TestRelativeSpread:
    def test_zero_for_equal_values(self):
        assert relative_spread([2.0, 2.0]) == 0.0

    def test_positive_for_unequal_values(self):
        assert relative_spread([1.0, 3.0]) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert relative_spread([]) == 0.0
        assert relative_spread([0.0, 0.0]) == 0.0


class TestSummarizeFairness:
    def test_summary_fields(self):
        summary = summarize_fairness({"a": 0.2, "b": 0.4, "c": 0.6})
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.4)
        assert summary.minimum == pytest.approx(0.2)
        assert summary.maximum == pytest.approx(0.6)
        assert 0.0 < summary.jains_index <= 1.0

    def test_empty_mapping(self):
        summary = summarize_fairness({})
        assert summary.count == 0
        assert summary.jains_index == 1.0

    def test_as_dict_round_trip(self):
        summary = summarize_fairness({"a": 0.5})
        as_dict = summary.as_dict()
        assert as_dict["count"] == 1
        assert as_dict["jains_index"] == pytest.approx(1.0)
