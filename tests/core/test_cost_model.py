"""Unit tests for the online cost model."""

import pytest

from repro.core.cost_model import CostModel, CostModelConfig


class TestCostModelConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CostModelConfig(window=0)
        with pytest.raises(ValueError):
            CostModelConfig(initial_cost_per_tuple=0)
        with pytest.raises(ValueError):
            CostModelConfig(min_capacity=0)


class TestCostModel:
    def test_initial_cost_used_before_observations(self):
        model = CostModel(CostModelConfig(initial_cost_per_tuple=2.0))
        assert model.cost_per_tuple() == 2.0
        assert model.capacity(100.0) == 50

    def test_observation_updates_estimate(self):
        model = CostModel()
        model.observe(tuples_processed=10, total_cost=5.0)
        assert model.cost_per_tuple() == pytest.approx(0.5)
        assert model.capacity(100.0) == 200

    def test_moving_average_over_window(self):
        model = CostModel(CostModelConfig(window=2))
        model.observe(10, 10.0)   # 1.0 per tuple
        model.observe(10, 30.0)   # 3.0 per tuple
        model.observe(10, 30.0)   # 3.0 per tuple; first sample evicted
        assert model.cost_per_tuple() == pytest.approx(3.0)

    def test_zero_tuple_round_is_ignored(self):
        model = CostModel()
        model.observe(0, 0.0)
        assert model.observations == 0
        assert model.cost_per_tuple() == CostModelConfig().initial_cost_per_tuple

    def test_capacity_never_below_minimum(self):
        model = CostModel(CostModelConfig(min_capacity=3))
        model.observe(1, 1000.0)
        assert model.capacity(0.5) == 3

    def test_capacity_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            CostModel().capacity(-1.0)

    def test_observe_rejects_negative_inputs(self):
        model = CostModel()
        with pytest.raises(ValueError):
            model.observe(-1, 1.0)
        with pytest.raises(ValueError):
            model.observe(1, -1.0)

    def test_lifetime_counters(self):
        model = CostModel()
        model.observe(10, 5.0)
        model.observe(20, 10.0)
        assert model.lifetime_tuples == 30
        assert model.lifetime_cost == pytest.approx(15.0)

    def test_adapts_to_cheaper_tuples(self):
        model = CostModel(CostModelConfig(window=4))
        for _ in range(4):
            model.observe(10, 20.0)  # expensive: 2.0
        expensive_capacity = model.capacity(100.0)
        for _ in range(4):
            model.observe(10, 5.0)   # cheap: 0.5
        assert model.capacity(100.0) > expensive_capacity
