"""Unit tests for the tuple and batch data model."""

import pytest

from repro.core.tuples import Batch, Tuple, merge_batches


class TestTuple:
    def test_value_accessor_returns_payload_field(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 42.0})
        assert t.value("v") == 42.0

    def test_value_accessor_returns_default_for_missing_field(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 42.0})
        assert t.value("missing", default=-1) == -1

    def test_with_sic_returns_copy_with_new_sic(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 1.0}, source_id="s")
        copy = t.with_sic(0.25)
        assert copy.sic == 0.25
        assert copy.timestamp == t.timestamp
        assert copy.values == t.values
        assert copy.source_id == "s"
        assert t.sic == 0.5

    def test_with_sic_does_not_share_payload_dict(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 1.0})
        copy = t.with_sic(0.1)
        copy.values["v"] = 99.0
        assert t.values["v"] == 1.0

    def test_copy_is_independent(self):
        t = Tuple(timestamp=2.0, sic=0.3, values={"a": 1})
        c = t.copy()
        c.values["a"] = 2
        assert t.values["a"] == 1


class TestBatch:
    def _tuples(self, n=4, sic=0.1):
        return [Tuple(timestamp=float(i), sic=sic, values={"v": i}) for i in range(n)]

    def test_header_sic_is_sum_of_tuple_sic(self):
        batch = Batch("q1", self._tuples(4, sic=0.25))
        assert batch.sic == pytest.approx(1.0)

    def test_created_at_defaults_to_earliest_timestamp(self):
        batch = Batch("q1", self._tuples(3))
        assert batch.created_at == 0.0

    def test_explicit_created_at_is_kept(self):
        batch = Batch("q1", self._tuples(3), created_at=9.0)
        assert batch.created_at == 9.0

    def test_len_and_iteration(self):
        batch = Batch("q1", self._tuples(5))
        assert len(batch) == 5
        assert sum(1 for _ in batch) == 5

    def test_empty_batch_is_falsy(self):
        assert not Batch("q1", [])
        assert Batch("q1", self._tuples(1))

    def test_batch_ids_are_unique(self):
        a = Batch("q1", self._tuples(1))
        b = Batch("q1", self._tuples(1))
        assert a.batch_id != b.batch_id

    def test_refresh_sic_tracks_tuple_mutation(self):
        batch = Batch("q1", self._tuples(2, sic=0.1))
        batch.tuples[0].sic = 0.9
        assert batch.refresh_sic() == pytest.approx(1.0)
        assert batch.sic == pytest.approx(1.0)

    def test_meta_data_bytes_is_constant_per_batch(self):
        small = Batch("q1", self._tuples(1))
        large = Batch("q1", self._tuples(100))
        assert small.meta_data_bytes() == large.meta_data_bytes()
        assert small.meta_data_bytes() >= 10

    def test_origin_fragment_id_default_and_explicit(self):
        assert Batch("q1", self._tuples(1)).origin_fragment_id is None
        tagged = Batch("q1", self._tuples(1), origin_fragment_id="q1/f0")
        assert tagged.origin_fragment_id == "q1/f0"


class TestMergeBatches:
    def test_groups_by_query_preserving_order(self):
        b1 = Batch("q1", [Tuple(0.0, 0.1, {})])
        b2 = Batch("q2", [Tuple(0.0, 0.1, {})])
        b3 = Batch("q1", [Tuple(1.0, 0.1, {})])
        grouped = merge_batches([b1, b2, b3])
        assert list(grouped) == ["q1", "q2"]
        assert grouped["q1"] == [b1, b3]
        assert grouped["q2"] == [b2]

    def test_empty_input_yields_empty_mapping(self):
        assert merge_batches([]) == {}
