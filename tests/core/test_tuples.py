"""Unit tests for the tuple and batch data model."""

import pytest

from repro.core.tuples import Batch, Tuple, merge_batches


class TestTuple:
    def test_value_accessor_returns_payload_field(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 42.0})
        assert t.value("v") == 42.0

    def test_value_accessor_returns_default_for_missing_field(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 42.0})
        assert t.value("missing", default=-1) == -1

    def test_with_sic_returns_copy_with_new_sic(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 1.0}, source_id="s")
        copy = t.with_sic(0.25)
        assert copy.sic == 0.25
        assert copy.timestamp == t.timestamp
        assert copy.values == t.values
        assert copy.source_id == "s"
        assert t.sic == 0.5

    def test_with_sic_does_not_share_payload_dict(self):
        t = Tuple(timestamp=1.0, sic=0.5, values={"v": 1.0})
        copy = t.with_sic(0.1)
        copy.values["v"] = 99.0
        assert t.values["v"] == 1.0

    def test_copy_is_independent(self):
        t = Tuple(timestamp=2.0, sic=0.3, values={"a": 1})
        c = t.copy()
        c.values["a"] = 2
        assert t.values["a"] == 1


class TestBatch:
    def _tuples(self, n=4, sic=0.1):
        return [Tuple(timestamp=float(i), sic=sic, values={"v": i}) for i in range(n)]

    def test_header_sic_is_sum_of_tuple_sic(self):
        batch = Batch("q1", self._tuples(4, sic=0.25))
        assert batch.sic == pytest.approx(1.0)

    def test_created_at_defaults_to_earliest_timestamp(self):
        batch = Batch("q1", self._tuples(3))
        assert batch.created_at == 0.0

    def test_explicit_created_at_is_kept(self):
        batch = Batch("q1", self._tuples(3), created_at=9.0)
        assert batch.created_at == 9.0

    def test_len_and_iteration(self):
        batch = Batch("q1", self._tuples(5))
        assert len(batch) == 5
        assert sum(1 for _ in batch) == 5

    def test_empty_batch_is_falsy(self):
        assert not Batch("q1", [])
        assert Batch("q1", self._tuples(1))

    def test_batch_ids_are_unique(self):
        a = Batch("q1", self._tuples(1))
        b = Batch("q1", self._tuples(1))
        assert a.batch_id != b.batch_id

    def test_refresh_sic_tracks_tuple_mutation(self):
        batch = Batch("q1", self._tuples(2, sic=0.1))
        batch.tuples[0].sic = 0.9
        assert batch.refresh_sic() == pytest.approx(1.0)
        assert batch.sic == pytest.approx(1.0)

    def test_meta_data_bytes_is_constant_per_batch(self):
        small = Batch("q1", self._tuples(1))
        large = Batch("q1", self._tuples(100))
        assert small.meta_data_bytes() == large.meta_data_bytes()
        assert small.meta_data_bytes() >= 10

    def test_origin_fragment_id_default_and_explicit(self):
        assert Batch("q1", self._tuples(1)).origin_fragment_id is None
        tagged = Batch("q1", self._tuples(1), origin_fragment_id="q1/f0")
        assert tagged.origin_fragment_id == "q1/f0"


class TestMergeBatches:
    def test_groups_by_query_preserving_order(self):
        b1 = Batch("q1", [Tuple(0.0, 0.1, {})])
        b2 = Batch("q2", [Tuple(0.0, 0.1, {})])
        b3 = Batch("q1", [Tuple(1.0, 0.1, {})])
        grouped = merge_batches([b1, b2, b3])
        assert list(grouped) == ["q1", "q2"]
        assert grouped["q1"] == [b1, b3]
        assert grouped["q2"] == [b2]

    def test_empty_input_yields_empty_mapping(self):
        assert merge_batches([]) == {}


class TestBatchSplit:
    def _batch(self, sics, query_id="q1", created_at=3.0):
        tuples = [
            Tuple(timestamp=float(i), sic=s, values={"v": i})
            for i, s in enumerate(sics)
        ]
        return Batch(query_id, tuples, created_at=created_at, fragment_id="f0")

    def test_split_partitions_tuples_and_sic(self):
        batch = self._batch([0.1, 0.2, 0.3, 0.4])
        head, tail = batch.split(1)
        assert [t.values["v"] for t in head.tuples] == [0]
        assert [t.values["v"] for t in tail.tuples] == [1, 2, 3]
        assert head.sic == pytest.approx(0.1)
        assert tail.sic == pytest.approx(0.9)
        assert head.sic + tail.sic == pytest.approx(batch.sic)

    def test_split_preserves_header_fields(self):
        batch = self._batch([0.1, 0.2])
        head, tail = batch.split(1)
        for piece in (head, tail):
            assert piece.query_id == batch.query_id
            assert piece.created_at == batch.created_at
            assert piece.fragment_id == batch.fragment_id
            assert piece.origin_fragment_id == batch.origin_fragment_id
        assert head.batch_id != tail.batch_id != batch.batch_id

    def test_repeated_splits_share_prefix_and_stay_consistent(self):
        batch = self._batch([0.1] * 16)
        prefix = batch.sic_prefix()
        head, tail = batch.split(4)
        assert tail.sic_prefix() is prefix  # shared, not recomputed
        h2, t2 = tail.split(5)
        assert h2.sic_prefix() is prefix
        total = head.sic + h2.sic + t2.sic
        assert total == pytest.approx(batch.sic)
        assert len(head) + len(h2) + len(t2) == 16

    def test_split_bounds_are_validated(self):
        batch = self._batch([0.1, 0.2])
        with pytest.raises(ValueError):
            batch.split(0)
        with pytest.raises(ValueError):
            batch.split(2)

    def test_refresh_sic_invalidates_cached_prefix(self):
        batch = self._batch([0.1, 0.2, 0.3])
        batch.sic_prefix()
        batch.tuples[0].sic = 0.7
        batch.refresh_sic()
        head, tail = batch.split(1)
        assert head.sic == pytest.approx(0.7)
        assert tail.sic == pytest.approx(0.5)


class TestTotalTuples:
    def test_counts_across_batches(self):
        from repro.core.tuples import total_tuples

        batches = [
            Batch("q1", [Tuple(0.0, 0.1, {}) for _ in range(3)]),
            Batch("q2", [Tuple(0.0, 0.1, {}) for _ in range(5)]),
        ]
        assert total_tuples(batches) == 8
        assert total_tuples([]) == 0


class TestSplitPrefixStaleness:
    def test_sibling_refresh_does_not_poison_shared_prefix(self):
        # head/tail share the parent's prefix array; mutating shared tuples
        # and refreshing one batch must not leave the other deriving split
        # SIC values from the stale array (split() detects the header
        # mismatch and rebuilds its own prefix).
        tuples = [Tuple(timestamp=float(i), sic=0.1, values={}) for i in range(6)]
        parent = Batch("q1", tuples)
        head, tail = parent.split(4)
        head.tuples[0].sic = 0.9  # shared Tuple object
        head.refresh_sic()
        h1, h2 = head.split(2)
        assert h1.sic == pytest.approx(1.0)  # 0.9 + 0.1, not stale 0.2
        assert h2.sic == pytest.approx(0.2)
        assert h1.sic + h2.sic == pytest.approx(head.sic)
