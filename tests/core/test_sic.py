"""Unit tests for SIC assignment and propagation (Equations 1-4)."""

import pytest

from repro.core.sic import (
    SicAssigner,
    SourceRateEstimator,
    propagate_sic,
    query_result_sic,
    source_tuple_sic,
)
from repro.core.tuples import Tuple


class TestSourceTupleSic:
    def test_equation_one(self):
        # 1 / (|T_s^S| * |S|)
        assert source_tuple_sic(100, 2) == pytest.approx(1.0 / 200.0)

    def test_single_tuple_single_source_has_sic_one(self):
        assert source_tuple_sic(1, 1) == pytest.approx(1.0)

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            source_tuple_sic(0, 1)
        with pytest.raises(ValueError):
            source_tuple_sic(10, 0)

    def test_paper_figure2_values(self):
        # Figure 2: 4 tuples from one source, 2 tuples from the other, 2 sources.
        assert source_tuple_sic(4, 2) == pytest.approx(0.125)
        assert source_tuple_sic(2, 2) == pytest.approx(0.25)


class TestPropagateSic:
    def test_equation_three_divides_equally(self):
        shares = propagate_sic([0.125, 0.125, 0.25], 2)
        assert shares == pytest.approx([0.25, 0.25])

    def test_zero_outputs_returns_empty(self):
        assert propagate_sic([0.5], 0) == []

    def test_total_sic_is_conserved(self):
        inputs = [0.1, 0.2, 0.3]
        outputs = propagate_sic(inputs, 7)
        assert sum(outputs) == pytest.approx(sum(inputs))

    def test_negative_outputs_rejected(self):
        with pytest.raises(ValueError):
            propagate_sic([0.1], -1)

    def test_paper_figure2_pipeline(self):
        # Operator b: 4 source tuples of 0.125 -> 2 derived tuples of 0.25.
        derived_b = propagate_sic([0.125] * 4, 2)
        assert derived_b == pytest.approx([0.25, 0.25])
        # Operator c: 2 source tuples of 0.25 -> 2 derived tuples of 0.25.
        derived_c = propagate_sic([0.25] * 2, 2)
        assert derived_c == pytest.approx([0.25, 0.25])
        # Operator a: 4 derived tuples -> 2 result tuples of 0.5; qSIC = 1.
        results = propagate_sic(derived_b + derived_c, 2)
        assert results == pytest.approx([0.5, 0.5])
        assert query_result_sic(results) == pytest.approx(1.0)


class TestQueryResultSic:
    def test_sum_of_result_tuples(self):
        assert query_result_sic([0.25, 0.25, 0.5]) == pytest.approx(1.0)

    def test_empty_result_is_zero(self):
        assert query_result_sic([]) == 0.0


class TestSourceRateEstimator:
    def test_unknown_source_returns_min_count(self):
        estimator = SourceRateEstimator(stw_seconds=10.0)
        assert estimator.tuples_per_stw("unknown") == 1.0

    def test_seed_rate_used_before_observations(self):
        estimator = SourceRateEstimator(stw_seconds=10.0)
        estimator.seed_rate("s", 100.0)
        assert estimator.tuples_per_stw("s") == pytest.approx(1000.0)

    def test_estimate_scales_partial_window_to_full_stw(self):
        estimator = SourceRateEstimator(stw_seconds=10.0)
        # 100 tuples over one second -> about 1000 per 10-second STW.
        for i in range(100):
            estimator.observe("s", timestamp=i / 100.0)
        estimate = estimator.tuples_per_stw("s")
        assert 800 <= estimate <= 1300

    def test_estimate_converges_to_observed_count_over_full_window(self):
        estimator = SourceRateEstimator(stw_seconds=5.0)
        for i in range(500):
            estimator.observe("s", timestamp=i / 100.0)  # 100 t/s for 5 s
        estimate = estimator.tuples_per_stw("s")
        assert estimate == pytest.approx(500, rel=0.1)

    def test_old_observations_expire(self):
        estimator = SourceRateEstimator(stw_seconds=1.0)
        for i in range(100):
            estimator.observe("s", timestamp=i / 100.0)
        for i in range(10):
            estimator.observe("s", timestamp=10.0 + i / 10.0)
        # Only the last burst (10 tuples over ~1 s) should remain.
        assert estimator.tuples_per_stw("s") < 50

    def test_rejects_non_positive_stw(self):
        with pytest.raises(ValueError):
            SourceRateEstimator(stw_seconds=0.0)

    def test_known_sources_lists_observed_and_seeded(self):
        estimator = SourceRateEstimator(stw_seconds=10.0)
        estimator.seed_rate("a", 10)
        estimator.observe("b", 0.0)
        assert set(estimator.known_sources()) == {"a", "b"}


class TestSicAssigner:
    def _tuples(self, source_id, count, start=0.0, spacing=0.01):
        return [
            Tuple(timestamp=start + i * spacing, sic=0.0, values={"v": i}, source_id=source_id)
            for i in range(count)
        ]

    def test_assign_sets_positive_sic(self):
        assigner = SicAssigner("q", num_sources=1, stw_seconds=10.0)
        tuples = assigner.assign(self._tuples("s", 50))
        assert all(t.sic > 0 for t in tuples)

    def test_steady_state_sums_to_one_per_stw(self):
        assigner = SicAssigner(
            "q", num_sources=1, stw_seconds=10.0, nominal_rates={"s": 100.0}
        )
        total = 0.0
        # 10 seconds of arrivals at 100 t/s.
        for second in range(10):
            batch = self._tuples("s", 100, start=float(second), spacing=0.01)
            assigner.assign(batch)
            if second >= 5:  # steady state only
                total += sum(t.sic for t in batch)
        # The last 5 seconds should carry about half of one STW's information.
        assert total == pytest.approx(0.5, rel=0.25)

    def test_normalised_by_number_of_sources(self):
        one = SicAssigner("q1", num_sources=1, stw_seconds=10.0, nominal_rates={"s": 10})
        two = SicAssigner("q2", num_sources=2, stw_seconds=10.0, nominal_rates={"s": 10})
        t1 = one.assign(self._tuples("s", 10))
        t2 = two.assign(self._tuples("s", 10))
        assert t1[0].sic == pytest.approx(2 * t2[0].sic)

    def test_sic_for_reports_current_value(self):
        assigner = SicAssigner("q", num_sources=1, stw_seconds=10.0, nominal_rates={"s": 100})
        assert assigner.sic_for("s") == pytest.approx(1.0 / 1000.0)

    def test_rejects_zero_sources(self):
        with pytest.raises(ValueError):
            SicAssigner("q", num_sources=0, stw_seconds=10.0)
