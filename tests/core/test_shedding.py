"""Unit tests for the shedder implementations and factory."""

import pytest

from repro.core.shedding import (
    BalanceSicShedder,
    NoShedder,
    RandomShedder,
    Shedder,
    TailDropShedder,
    make_shedder,
)
from repro.core.tuples import Batch, Tuple


def make_batch(query_id, count, sic=0.01, ts=0.0):
    return Batch(
        query_id,
        [Tuple(timestamp=ts + i * 0.001, sic=sic, values={}) for i in range(count)],
    )


class TestNoShedder:
    def test_keeps_everything(self):
        shedder = NoShedder()
        batches = [make_batch("q", 50)]
        decision = shedder.shed(batches, capacity=1, reported_sic={})
        assert decision.kept_tuples == 50
        assert decision.shed_tuples == 0


class TestRandomShedder:
    def test_keeps_everything_under_capacity(self):
        shedder = RandomShedder(seed=0)
        decision = shedder.shed([make_batch("q", 10)], capacity=100, reported_sic={})
        assert decision.kept_tuples == 10

    def test_respects_capacity_when_overloaded(self):
        shedder = RandomShedder(seed=0)
        batches = [make_batch(f"q{i}", 10) for i in range(10)]
        decision = shedder.shed(batches, capacity=35, reported_sic={})
        assert decision.kept_tuples == 35
        assert decision.shed_tuples == 65

    def test_is_deterministic_for_a_seed(self):
        batches = [make_batch(f"q{i}", 10) for i in range(10)]
        d1 = RandomShedder(seed=7).shed(batches, 30, {})
        d2 = RandomShedder(seed=7).shed(batches, 30, {})
        assert [b.batch_id for b in d1.kept] == [b.batch_id for b in d2.kept]

    def test_different_seeds_differ(self):
        batches = [make_batch(f"q{i}", 10) for i in range(10)]
        d1 = RandomShedder(seed=1).shed(batches, 30, {})
        d2 = RandomShedder(seed=2).shed(batches, 30, {})
        assert [b.batch_id for b in d1.kept] != [b.batch_id for b in d2.kept]

    def test_without_splitting_keeps_whole_batches(self):
        shedder = RandomShedder(seed=0, allow_splitting=False)
        batches = [make_batch(f"q{i}", 10) for i in range(5)]
        decision = shedder.shed(batches, capacity=25, reported_sic={})
        assert decision.kept_tuples in (20, 25)
        assert all(len(b) == 10 for b in decision.kept)


class TestTailDropShedder:
    def test_keeps_oldest_batches(self):
        shedder = TailDropShedder(allow_splitting=False)
        old = make_batch("q1", 10, ts=0.0)
        new = make_batch("q2", 10, ts=5.0)
        decision = shedder.shed([new, old], capacity=10, reported_sic={})
        assert decision.kept[0].batch_id == old.batch_id
        assert decision.shed[0].batch_id == new.batch_id


class TestBalanceSicShedder:
    def test_wraps_policy_and_balances(self):
        shedder = BalanceSicShedder(seed=0)
        degraded = make_batch("degraded", 10, sic=0.02)
        healthy = make_batch("healthy", 10, sic=0.02)
        decision = shedder.shed(
            [degraded, healthy], capacity=10,
            reported_sic={"degraded": 0.1, "healthy": 0.9},
        )
        kept = decision.kept_sic_per_query()
        assert kept.get("degraded", 0.0) > kept.get("healthy", 0.0)

    def test_name_attribute(self):
        assert BalanceSicShedder().name == "balance-sic"


class TestMakeShedder:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("balance-sic", BalanceSicShedder),
            ("themis", BalanceSicShedder),
            ("random", RandomShedder),
            ("tail-drop", TailDropShedder),
            ("fifo", TailDropShedder),
            ("none", NoShedder),
            ("perfect", NoShedder),
        ],
    )
    def test_factory_resolves_names(self, name, cls):
        assert isinstance(make_shedder(name), cls)

    def test_factory_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            make_shedder("unknown-shedder")

    def test_all_shedders_satisfy_the_interface(self):
        for name in ("balance-sic", "random", "tail-drop", "none"):
            shedder = make_shedder(name)
            assert isinstance(shedder, Shedder)
            decision = shedder.shed([make_batch("q", 5)], capacity=3, reported_sic={})
            assert decision.kept_tuples + decision.shed_tuples == 5
