"""ColumnBlock v2 (NumPy backend) unit tests.

Covers the satellite edge cases of the columnar v2 work: empty blocks,
heterogeneous/object-dtype payload columns, view-vs-copy semantics after
``Batch.split``, memoized ``to_tuples`` materialization with invalidation,
the sequential-sum determinism primitive, and checkpoint round-trips of
array-backed window/estimator state.
"""

import random

import numpy as np
import pytest

from repro.core.columns import (
    BACKENDS,
    ColumnBlock,
    get_default_backend,
    seq_sum,
    set_default_backend,
    use_backend,
)
from repro.core.sic import SicAssigner, SourceRateEstimator
from repro.core.tuples import Batch, Tuple
from repro.streaming.windows import ImmediateWindow, TimeWindow


def make_block(n=10, start=0.0, source_id="s"):
    return ColumnBlock(
        timestamps=[start + 0.01 * i for i in range(n)],
        sics=[1e-3] * n,
        values={"v": [float(i) for i in range(n)]},
        source_id=source_id,
    )


class TestBackendSwitch:
    def test_backends_and_default(self):
        assert get_default_backend() in BACKENDS

    def test_use_backend_scopes_and_restores(self):
        before = get_default_backend()
        with use_backend("list"):
            assert get_default_backend() == "list"
            assert isinstance(make_block().timestamps, list)
        assert get_default_backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("arrow")

    def test_numpy_backend_uses_float64_arrays(self):
        with use_backend("numpy"):
            block = make_block()
        assert isinstance(block.timestamps, np.ndarray)
        assert block.timestamps.dtype == np.float64
        assert block.sics.dtype == np.float64
        assert block.values["v"].dtype == np.float64


class TestSequentialSum:
    def test_seq_sum_matches_python_loop_bit_for_bit(self):
        rng = random.Random(7)
        values = [rng.uniform(-1e3, 1e3) for _ in range(100_000)]
        arr = np.asarray(values)
        total = 0.0
        for v in values:
            total += v
        assert seq_sum(arr) == total
        chained = 123.456
        for v in values:
            chained += v
        assert seq_sum(arr, initial=123.456) == chained

    def test_seq_sum_small_and_empty(self):
        assert seq_sum(np.asarray([])) == 0.0
        assert seq_sum(np.asarray([]), initial=2.5) == 2.5
        assert seq_sum(np.asarray([1.5, 2.25])) == 3.75
        assert seq_sum([1.5, 2.25], initial=1.0) == 4.75


class TestEmptyBlocks:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_block_roundtrips(self, backend):
        with use_backend(backend):
            block = ColumnBlock([], [], {})
            assert len(block) == 0
            assert not block
            assert block.to_tuples() == []
            assert block.sic_total() == 0.0
            merged = ColumnBlock.concat([block, ColumnBlock([], [], {})])
            assert len(merged) == 0
            piece = block.slice(0, 0)
            assert len(piece) == 0

    def test_empty_batch_from_block(self):
        with use_backend("numpy"):
            batch = Batch.from_block("q", ColumnBlock([], [], {}))
        assert len(batch) == 0
        assert batch.header.sic == 0.0
        assert batch.header.created_at == 0.0


class TestObjectColumns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_heterogeneous_payload_values_preserved(self, backend):
        values = {
            "id": ["node-1", "node-2", "node-3"],
            "tags": [["a"], [], ["b", "c"]],
            "count": [1, 2, 3],  # ints stay ints (no float64 coercion)
            "v": [1.0, 2.0, 3.0],
        }
        with use_backend(backend):
            block = ColumnBlock(
                timestamps=[0.1, 0.2, 0.3],
                sics=[0.5, 0.25, 0.25],
                values={f: list(col) for f, col in values.items()},
                source_id="s",
            )
            tuples = block.to_tuples()
        for i, t in enumerate(tuples):
            assert t.values["id"] == values["id"][i]
            assert type(t.values["id"]) is str
            assert t.values["tags"] == values["tags"][i]
            assert t.values["count"] == values["count"][i]
            assert type(t.values["count"]) is int
            assert type(t.values["v"]) is float

    def test_object_columns_get_object_dtype(self):
        with use_backend("numpy"):
            block = ColumnBlock(
                timestamps=[0.0, 1.0],
                values={"id": ["a", "b"], "mixed": [1, "x"]},
            )
        assert block.values["id"].dtype == object
        assert block.values["mixed"].dtype == object

    def test_object_columns_concat(self):
        with use_backend("numpy"):
            a = ColumnBlock([0.0], values={"id": ["a"]}, source_id="s")
            b = ColumnBlock([1.0], values={"id": ["b"]}, source_id="s")
            merged = ColumnBlock.concat_ranges([(a, 0, 1), (b, 0, 1)])
        assert merged.values["id"].tolist() == ["a", "b"]
        assert merged.source_id == "s"


class TestToTuplesMemoization:
    def test_full_materialization_is_cached(self):
        with use_backend("numpy"):
            block = make_block(5)
        first = block.to_tuples()
        second = block.to_tuples()
        assert first == second
        # Same Tuple objects (cached), fresh list container per call.
        assert first is not second
        assert all(a is b for a, b in zip(first, second))
        # Ranges of a memoized block slice the cache.
        assert block.to_tuples(1, 3) == first[1:3]
        assert block.to_tuples(1, 3)[0] is first[1]

    def test_rebinding_a_column_invalidates_the_cache(self):
        with use_backend("numpy"):
            block = make_block(4)
        before = block.to_tuples()
        block.sics = block.constant_sics(0.125)
        after = block.to_tuples()
        assert before[0] is not after[0]
        assert all(t.sic == 0.125 for t in after)

    def test_partial_range_does_not_build_the_cache(self):
        with use_backend("numpy"):
            block = make_block(6)
        a = block.to_tuples(0, 2)
        b = block.to_tuples(0, 2)
        assert a == b
        assert a[0] is not b[0]  # no cache was installed by range requests


class TestSplitViewSemantics:
    def test_numpy_split_pieces_are_zero_copy_views(self):
        with use_backend("numpy"):
            block = make_block(100)
            batch = Batch.from_block("q", block)
            head, tail = batch.split(40)
            assert len(head) == 40 and len(tail) == 60
            # Reading a piece's block materializes an O(1) view over the
            # parent's arrays — no column copies.
            assert np.shares_memory(head.block.timestamps, block.timestamps)
            assert np.shares_memory(tail.block.timestamps, block.timestamps)
            assert head.block.values["v"].base is not None
            # Header SIC is prefix-derived and exact.
            assert head.header.sic + tail.header.sic == pytest.approx(
                batch.header.sic
            )
            assert head.block.timestamps.tolist() == block.timestamps[:40].tolist()

    def test_list_split_pieces_are_copies(self):
        with use_backend("list"):
            block = make_block(10)
            batch = Batch.from_block("q", block)
            head, _ = batch.split(4)
            assert head.block.timestamps == block.timestamps[:4]
            assert head.block.timestamps is not block.timestamps

    def test_split_tuples_match_across_backends(self):
        def pieces(backend):
            with use_backend(backend):
                block = make_block(20)
                batch = Batch.from_block("q", block)
                head, tail = batch.split(7)
                return [
                    (t.timestamp, t.sic, t.values)
                    for t in head.tuples + tail.tuples
                ]

        assert pieces("numpy") == pieces("list")


class TestArrayStateRoundTrips:
    def test_time_window_checkpoint_roundtrip_array_backed(self):
        with use_backend("numpy"):
            window = TimeWindow(1.0)
            for b in range(8):
                window.insert_block(make_block(50, start=b * 0.25))
            state = window.snapshot()
            restored = TimeWindow(1.0)
            restored.restore(state)
            assert restored.pending_count() == window.pending_count()
            assert restored.pending_sic() == window.pending_sic()
            # Restored panes close to identical results.
            a = [(p.sic, len(p)) for p in window.advance(10.0)]
            b = [(p.sic, len(p)) for p in restored.advance(10.0)]
            assert a == b

    def test_restore_under_other_backend_is_result_identical(self):
        with use_backend("numpy"):
            window = TimeWindow(1.0)
            for b in range(8):
                window.insert_block(make_block(50, start=b * 0.25))
            state = window.snapshot()
            panes_numpy = [
                (p.sic, [t.sic for t in p.tuples]) for p in window.advance(10.0)
            ]
        with use_backend("list"):
            restored = TimeWindow(1.0)
            restored.restore(state)
            panes_list = [
                (p.sic, [t.sic for t in p.tuples])
                for p in restored.advance(10.0)
            ]
        assert panes_numpy == panes_list

    def test_immediate_window_roundtrip_array_backed(self):
        with use_backend("numpy"):
            window = ImmediateWindow()
            window.insert_block(make_block(30))
            window.insert([Tuple(timestamp=0.4, sic=0.25, values={"v": 9.0})])
            state = window.snapshot()
            restored = ImmediateWindow()
            restored.restore(state)
            assert restored.pending_sic() == window.pending_sic()
            (pane_a,) = window.advance(1.0)
            (pane_b,) = restored.advance(1.0)
            assert pane_a.sic == pane_b.sic
            assert [t.values for t in pane_a.tuples] == [
                t.values for t in pane_b.tuples
            ]

    def test_estimator_run_buckets_roundtrip(self):
        with use_backend("numpy"):
            original = SourceRateEstimator(stw_seconds=2.0)
            for b in range(6):
                block = make_block(40, start=b * 0.25)
                original.observe_run("s", block.timestamps)
            state = original.snapshot()
            # Run buckets expand to the plain [t, 1] pair layout.
            buckets = state["windows"]["s"]["buckets"]
            assert all(count == 1 for _, count in buckets)
            restored = SourceRateEstimator(stw_seconds=2.0)
            restored.restore(state)
            assert restored.tuples_per_stw("s") == original.tuples_per_stw("s")
            # Future arrivals produce identical estimates on both.
            late = make_block(40, start=2.0)
            original.observe_run("s", late.timestamps)
            restored.observe_run("s", late.timestamps)
            assert restored.tuples_per_stw("s") == original.tuples_per_stw("s")

    def test_assigner_array_vs_list_estimates_identical(self):
        def stamped(backend):
            with use_backend(backend):
                assigner = SicAssigner("q", 2, stw_seconds=2.0)
                out = []
                for b in range(10):
                    block = make_block(25, start=b * 0.25)
                    assigner.assign_block(block)
                    out.append(list(block.sics))
                return out

        assert stamped("numpy") == stamped("list")


class TestMaterializationCounter:
    def test_build_tuples_bumps_default_registry(self):
        from repro.perf.stopwatch import default_registry

        registry = default_registry()
        before = registry.counters.get("columns.materializations", 0.0)
        before_rows = registry.counters.get("columns.materialized_rows", 0.0)
        block = make_block(7)
        block.to_tuples()
        assert registry.counters["columns.materializations"] == before + 1
        assert registry.counters["columns.materialized_rows"] == before_rows + 7

    def test_memoized_to_tuples_counts_once(self):
        from repro.perf.stopwatch import default_registry

        registry = default_registry()
        block = make_block(5)
        block.to_tuples()
        after_first = registry.counters["columns.materializations"]
        block.to_tuples()          # memoized full-block hit
        block.to_tuples(1, 3)      # slice of the memoized cache
        assert registry.counters["columns.materializations"] == after_first
        block.to_tuples(fresh=True)  # fresh bypasses the cache: counts again
        assert registry.counters["columns.materializations"] == after_first + 1


class TestColumnAppender:
    """Grow-by-doubling pane buffers: element-identical to concat_ranges."""

    def _ranges(self, specs):
        out = []
        for n, offset in specs:
            block = ColumnBlock(
                [offset + 0.1 * i for i in range(n)],
                [0.5 + 0.01 * i for i in range(n)],
                {"v": [float(offset + i) for i in range(n)]},
                source_id="s0",
            )
            out.append((block, 0, n))
        return out

    def _assert_equal(self, built, merged):
        assert list(built.timestamps) == list(merged.timestamps)
        assert list(built.sics) == list(merged.sics)
        assert set(built.values) == set(merged.values)
        for field in merged.values:
            assert list(built.values[field]) == list(merged.values[field])
        assert built.source_id == merged.source_id

    def test_matches_concat_ranges_bit_for_bit(self):
        from repro.core.columns import ColumnAppender

        ranges = self._ranges([(3, 0), (5, 10), (2, 20), (40, 30)])
        appender = ColumnAppender()
        for block, lo, hi in ranges:
            assert appender.append_range(block, lo, hi)
        self._assert_equal(appender.build(), ColumnBlock.concat_ranges(ranges))

    def test_single_range_stays_lazy_zero_copy(self):
        from repro.core.columns import ColumnAppender

        (item,) = self._ranges([(4, 0)])
        appender = ColumnAppender()
        assert appender.append_range(*item)
        built = appender.build()
        # One-range panes keep concat_ranges' zero-copy fast path: the
        # built block *is* the source block (full range, no copies).
        assert built is item[0]

    def test_partial_ranges_copy_the_window(self):
        from repro.core.columns import ColumnAppender

        ranges = self._ranges([(6, 0), (6, 10)])
        sliced = [(b, 1, 5) for b, _, _ in ranges]
        appender = ColumnAppender()
        for item in sliced:
            assert appender.append_range(*item)
        self._assert_equal(appender.build(), ColumnBlock.concat_ranges(sliced))

    def test_degrades_on_list_backend(self):
        from repro.core.columns import ColumnAppender

        with use_backend("list"):
            (item,) = self._ranges([(3, 0)])
            appender = ColumnAppender()
            assert not appender.append_range(*item)

    def test_degrades_on_schema_change(self):
        from repro.core.columns import ColumnAppender

        a = ColumnBlock([0.0], [0.5], {"v": [1.0]})
        b = ColumnBlock([1.0], [0.5], {"w": [1.0]})
        appender = ColumnAppender()
        assert appender.append_range(a, 0, 1)
        assert not appender.append_range(b, 0, 1)

    def test_degrades_on_dtype_change(self):
        from repro.core.columns import ColumnAppender

        a = ColumnBlock([0.0], [0.5], {"v": [1.0]})
        b = ColumnBlock([1.0], [0.5], {"v": ["tag"]})  # object column
        appender = ColumnAppender()
        assert appender.append_range(a, 0, 1)
        assert not appender.append_range(b, 0, 1)

    def test_mixed_source_ids_drop_to_none(self):
        from repro.core.columns import ColumnAppender

        a = ColumnBlock([0.0], [0.5], {"v": [1.0]}, source_id="s0")
        b = ColumnBlock([1.0], [0.6], {"v": [2.0]}, source_id="s1")
        appender = ColumnAppender()
        assert appender.append_range(a, 0, 1)
        assert appender.append_range(b, 0, 1)
        built = appender.build()
        assert built.source_id is None
        merged = ColumnBlock.concat_ranges([(a, 0, 1), (b, 0, 1)])
        assert merged.source_id is None

    def test_object_columns_carry_identical_objects(self):
        from repro.core.columns import ColumnAppender

        payload = {"k": 1}
        a = ColumnBlock([0.0, 0.1], [0.5, 0.5], {"v": ["x", payload]})
        b = ColumnBlock([1.0, 1.1], [0.6, 0.6], {"v": [payload, "y"]})
        appender = ColumnAppender()
        assert appender.append_range(a, 0, 2)
        assert appender.append_range(b, 0, 2)
        built = appender.build()
        assert built.values["v"][1] is payload
        assert built.values["v"][2] is payload

    def test_growth_over_many_appends(self):
        from repro.core.columns import ColumnAppender

        ranges = self._ranges([(1, i) for i in range(100)])
        appender = ColumnAppender()
        for item in ranges:
            assert appender.append_range(*item)
        assert len(appender) == 100
        self._assert_equal(appender.build(), ColumnBlock.concat_ranges(ranges))
