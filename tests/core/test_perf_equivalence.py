"""The heap-based fast path must match the reference implementations exactly.

``repro.core._reference`` preserves the seed's O(iterations × queries)
BALANCE-SIC selection and the per-tuple-deque rate estimator.  These tests
drive both implementations with identical inputs and seeds and require
byte-identical outcomes — same kept/shed batch contents in the same order,
same RNG consumption, same SIC estimates — which is what makes the fast path
a pure performance change.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core._reference import (
    ReferenceBalanceSicPolicy,
    ReferenceSourceRateEstimator,
)
from repro.core.balance_sic import (
    BalanceSicConfig,
    BalanceSicPolicy,
    SelectionStrategy,
)
from repro.core.tuples import Batch, Tuple


def make_buffer(num_queries, batches_per_query, tuples_per_batch, seed):
    rng = random.Random(seed)
    batches, reported = [], {}
    for q in range(num_queries):
        query_id = f"q{q}"
        reported[query_id] = rng.random()
        for b in range(batches_per_query):
            sic = rng.uniform(1e-4, 1e-2)
            tuples = [
                Tuple(timestamp=b + i * 1e-3, sic=sic, values={})
                for i in range(tuples_per_batch)
            ]
            batches.append(Batch(query_id, tuples))
    return batches, reported


def batch_signature(batch):
    """Content identity of a batch: query, tuple payloads and header SIC."""
    return (
        batch.query_id,
        batch.sic,
        tuple((t.timestamp, t.sic) for t in batch.tuples),
    )


def assert_decisions_identical(fast, reference):
    assert fast.kept_tuples == reference.kept_tuples
    assert fast.shed_tuples == reference.shed_tuples
    assert fast.iterations == reference.iterations
    assert [batch_signature(b) for b in fast.kept] == [
        batch_signature(b) for b in reference.kept
    ]
    assert [batch_signature(b) for b in fast.shed] == [
        batch_signature(b) for b in reference.shed
    ]
    assert fast.projected_sic == reference.projected_sic


class TestSelectionEquivalence:
    @pytest.mark.parametrize("strategy", SelectionStrategy.ALL)
    @pytest.mark.parametrize("allow_splitting", [True, False])
    @pytest.mark.parametrize("use_projection", [True, False])
    @pytest.mark.parametrize("capacity_fraction", [0.0, 0.25, 0.75, 1.5])
    def test_matrix(self, strategy, allow_splitting, use_projection, capacity_fraction):
        config = BalanceSicConfig(
            selection_strategy=strategy,
            allow_batch_splitting=allow_splitting,
            use_projection=use_projection,
        )
        for seed in range(3):
            batches, reported = make_buffer(7, 3, 6, seed)
            total = sum(len(b) for b in batches)
            capacity = int(total * capacity_fraction)
            fast = BalanceSicPolicy(config, rng=random.Random(99)).select(
                batches, capacity, reported
            )
            ref_batches, ref_reported = make_buffer(7, 3, 6, seed)
            reference = ReferenceBalanceSicPolicy(
                config, rng=random.Random(99)
            ).select(ref_batches, capacity, ref_reported)
            assert_decisions_identical(fast, reference)

    def test_queries_without_buffered_batches(self):
        batches, _ = make_buffer(3, 2, 5, seed=1)
        reported = {"q0": 0.1, "q1": 0.5, "q2": 0.9, "ghost1": 0.05, "ghost2": 0.3}
        fast = BalanceSicPolicy(rng=random.Random(5)).select(batches, 12, reported)
        ref_batches, _ = make_buffer(3, 2, 5, seed=1)
        reference = ReferenceBalanceSicPolicy(rng=random.Random(5)).select(
            ref_batches, 12, dict(reported)
        )
        assert_decisions_identical(fast, reference)

    def test_many_exact_ties_consume_identical_rng(self):
        # All queries report 0 and carry identical batches: every iteration is
        # a maximal tie, exercising the rng.choice replay in the heap path.
        def build():
            return [
                Batch(
                    f"q{q}",
                    [Tuple(timestamp=float(b), sic=0.01, values={}) for _ in range(4)],
                )
                for q in range(12)
                for b in range(3)
            ]

        fast = BalanceSicPolicy(rng=random.Random(11)).select(build(), 37, {})
        reference = ReferenceBalanceSicPolicy(rng=random.Random(11)).select(
            build(), 37, {}
        )
        assert_decisions_identical(fast, reference)

    @given(
        num_queries=st.integers(1, 8),
        batches_per_query=st.integers(1, 5),
        tuples_per_batch=st.integers(1, 8),
        capacity=st.integers(0, 250),
        seed=st.integers(0, 1000),
        allow_splitting=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_buffers(
        self,
        num_queries,
        batches_per_query,
        tuples_per_batch,
        capacity,
        seed,
        allow_splitting,
    ):
        config = BalanceSicConfig(allow_batch_splitting=allow_splitting)
        batches, reported = make_buffer(
            num_queries, batches_per_query, tuples_per_batch, seed
        )
        fast = BalanceSicPolicy(config, rng=random.Random(seed)).select(
            batches, capacity, reported
        )
        ref_batches, ref_reported = make_buffer(
            num_queries, batches_per_query, tuples_per_batch, seed
        )
        reference = ReferenceBalanceSicPolicy(config, rng=random.Random(seed)).select(
            ref_batches, capacity, ref_reported
        )
        assert_decisions_identical(fast, reference)


class TestEstimatorEquivalence:
    @given(
        seed=st.integers(0, 1000),
        stw=st.floats(min_value=0.1, max_value=10.0),
        chunks=st.lists(st.integers(1, 50), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_bucketed_estimates_match_per_tuple_deque(self, seed, stw, chunks):
        from repro.core.sic import SourceRateEstimator

        rng = random.Random(seed)
        fast = SourceRateEstimator(stw_seconds=stw)
        reference = ReferenceSourceRateEstimator(stw_seconds=stw)
        t = 0.0
        for count in chunks:
            t += rng.uniform(0.0, stw / 4)
            source = rng.choice(["a", "b"])
            fast.observe(source, t, count=count)
            reference.observe(source, t, count=count)
            for s in ("a", "b"):
                assert fast.tuples_per_stw(s) == reference.tuples_per_stw(s)

    def test_observe_many_matches_sequential_observe(self):
        from repro.core.sic import SourceRateEstimator

        rng = random.Random(3)
        timestamps = [rng.uniform(0, 20) for _ in range(500)]  # out of order too
        fast = SourceRateEstimator(stw_seconds=1.5)
        reference = ReferenceSourceRateEstimator(stw_seconds=1.5)
        fast.observe_many("s", timestamps)
        for ts in timestamps:
            reference.observe("s", ts)
        assert fast.tuples_per_stw("s") == reference.tuples_per_stw("s")

    def test_seeded_rate_used_until_arrivals(self):
        from repro.core.sic import SourceRateEstimator

        fast = SourceRateEstimator(stw_seconds=10.0)
        reference = ReferenceSourceRateEstimator(stw_seconds=10.0)
        fast.seed_rate("s", 40.0)
        reference.seed_rate("s", 40.0)
        assert fast.tuples_per_stw("s") == reference.tuples_per_stw("s") == 400.0
        fast.observe("s", 1.0)
        reference.observe("s", 1.0)
        assert fast.tuples_per_stw("s") == reference.tuples_per_stw("s")


class TestEstimatorEdgeCases:
    def test_zero_count_observe_matches_reference(self):
        # A count=0 observe must not append a phantom bucket that stretches
        # the observed span (regression: fast path diverged from reference).
        from repro.core.sic import SourceRateEstimator

        fast = SourceRateEstimator(stw_seconds=10.0)
        reference = ReferenceSourceRateEstimator(stw_seconds=10.0)
        for est in (fast, reference):
            est.observe("s", 0.0, count=5)
            est.observe("s", 1.0, count=0)
        assert fast.tuples_per_stw("s") == reference.tuples_per_stw("s") == 5.0

    def test_zero_count_still_expires_window(self):
        from repro.core.sic import SourceRateEstimator

        fast = SourceRateEstimator(stw_seconds=1.0)
        reference = ReferenceSourceRateEstimator(stw_seconds=1.0)
        for est in (fast, reference):
            est.observe("s", 0.0, count=4)
            est.observe("s", 0.5, count=4)
            est.observe("s", 10.0, count=0)  # everything should expire
        assert fast.tuples_per_stw("s") == reference.tuples_per_stw("s")
