"""Unit tests for the result-error metrics."""

import pytest

from repro.metrics.collectors import MetricsCollector, SummaryStats, TimeSeries
from repro.metrics.errors import (
    align_series,
    kendall_distance,
    mean_absolute_relative_error,
    normalized_kendall_distance,
    std_around_reference,
)


class TestMeanAbsoluteRelativeError:
    def test_zero_for_identical_series(self):
        assert mean_absolute_relative_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # |9-10|/10 and |22-20|/20 -> (0.1 + 0.1) / 2
        assert mean_absolute_relative_error([9.0, 22.0], [10.0, 20.0]) == pytest.approx(0.1)

    def test_near_zero_reference_falls_back_to_absolute_error(self):
        assert mean_absolute_relative_error([0.5], [0.0]) == pytest.approx(0.5)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([], [])


class TestKendallDistance:
    def test_identical_lists_have_zero_distance(self):
        assert kendall_distance(["a", "b", "c"], ["a", "b", "c"]) == 0
        assert normalized_kendall_distance(["a", "b"], ["a", "b"]) == 0.0

    def test_reversed_lists_have_maximal_distance(self):
        assert normalized_kendall_distance(["a", "b", "c"], ["c", "b", "a"]) == 1.0

    def test_single_swap_counts_one_pair(self):
        assert kendall_distance(["a", "b", "c"], ["b", "a", "c"]) == 1

    def test_disjoint_lists_are_maximally_distant(self):
        assert normalized_kendall_distance(["a", "b"], ["c", "d"]) == 1.0

    def test_partial_overlap_is_between_zero_and_one(self):
        d = normalized_kendall_distance(["a", "b", "c"], ["a", "b", "d"])
        assert 0.0 < d < 1.0

    def test_empty_lists(self):
        assert normalized_kendall_distance([], []) == 0.0

    def test_duplicates_are_ignored(self):
        assert kendall_distance(["a", "a", "b"], ["a", "b"]) == 0


class TestStdAroundReference:
    def test_zero_for_constant_samples_at_reference(self):
        assert std_around_reference([5.0, 5.0, 5.0], reference=5.0) == 0.0

    def test_uses_mean_when_no_reference_given(self):
        assert std_around_reference([4.0, 6.0]) == pytest.approx(1.0)

    def test_reference_shifts_the_spread(self):
        assert std_around_reference([4.0, 6.0], reference=0.0) > std_around_reference(
            [4.0, 6.0], reference=5.0
        )

    def test_empty_samples(self):
        assert std_around_reference([]) == 0.0


class TestAlignSeries:
    def test_aligns_on_common_keys_only(self):
        pairs = align_series({1.0: 10.0, 2.0: 20.0}, {2.0: 21.0, 3.0: 30.0})
        assert pairs == [(20.0, 21.0)]


class TestCollectors:
    def test_summary_stats_from_samples(self):
        stats = SummaryStats.from_samples([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0 and stats.maximum == 3.0
        assert "2.0000" in str(stats)

    def test_summary_stats_empty(self):
        assert SummaryStats.from_samples([]).count == 0

    def test_time_series_appends_and_summarises(self):
        series = TimeSeries("sic")
        for i in range(10):
            series.append(i * 0.25, i / 10.0)
        assert len(series) == 10
        assert series.last() == pytest.approx(0.9)
        assert series.summary(skip_initial=5).count == 5

    def test_time_series_rejects_time_regression(self):
        series = TimeSeries()
        series.append(1.0, 0.5)
        with pytest.raises(ValueError):
            series.append(0.5, 0.6)

    def test_time_series_downsample(self):
        series = TimeSeries()
        for i in range(100):
            series.append(float(i), float(i))
        points = series.downsample(10)
        assert len(points) == 10
        with pytest.raises(ValueError):
            series.downsample(0)

    def test_metrics_collector_records_and_summarises(self):
        collector = MetricsCollector()
        collector.record("q1", 0.5)
        collector.record("q1", 0.7)
        collector.record_many({"q2": 0.1})
        assert "q1" in collector and len(collector) == 2
        assert collector.summary("q1").mean == pytest.approx(0.6)
        assert collector.means()["q2"] == pytest.approx(0.1)
        assert collector.samples("missing") == []
