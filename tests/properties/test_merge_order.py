"""Property suite for the sharded runtime's deterministic merge order.

The sharded driver replaces the single heap's global transmit counter with
action tokens ``(time, ctx_priority, ctx_rank, k)`` (see
:mod:`repro.runtime.sharded`).  Three properties make the network-boundary
merge deterministic, asserted here with hypothesis:

* **totality** — tokens built by the runtime's construction grammar are
  totally ordered: any two distinct tokens compare, comparison never
  raises, and no two actions share a token;
* **stability under arbitrary shard interleavings** — the sorted order of
  a token set is a pure function of the tokens, so *any* permutation (any
  order in which shards happened to emit them) merges identically; and
  end-to-end, randomized seeds/latencies/worker counts/partition maps
  leave a sharded run bit-identical to the single-heap run;
* **per-link FIFO** — the sequence of deliveries each receiver observes is
  exactly the single-heap sequence, message for message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.experiments.common import build_federation
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.runtime import EventRuntime, ShardedRuntime
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator
from repro.workloads.aggregate import make_aggregate_query
from repro.workloads.generators import WorkloadSpec, generate_complex_workload

INTERVAL = 0.25
STW = StwConfig(stw_seconds=4.0, slide_seconds=INTERVAL)


def make_local_system(latency, num_nodes=3, queries=3):
    system = FederatedSystem(
        stw_config=STW,
        shedding_interval=INTERVAL,
        network=Network(UniformLatency(latency)),
        retain_results=True,
    )
    for i in range(num_nodes):
        system.add_node(
            FspsNode(
                node_id=f"node-{i}",
                shedder=make_shedder("balance-sic", seed=i),
                budget_per_interval=500.0,
                stw_config=STW,
            )
        )
    for i in range(queries):
        query = make_aggregate_query(
            ("avg", "count")[i % 2], query_id=f"q{i}", rate=80.0, seed=i
        )
        system.deploy_query(
            query.query_id,
            query.fragments,
            query.sources,
            {fid: f"node-{i % num_nodes}" for fid in query.fragments},
        )
    return system


def make_runtime(system, kind, workers=2):
    if kind == "event":
        return EventRuntime(system)
    return ShardedRuntime(system, workers=workers)

# ---------------------------------------------------------------------------
# Token-level properties: the construction grammar, modelled structurally.
#
# A context rank is either () (construction / ambient), a delivery context
# (deliver_at, entry_token), or the flattened lineage of the schedule call
# that created the stream event — a triple (tp_levels, root, k_path) with
# one (time, priority) pair and one intra-context ordinal per chain level
# (ShardedRuntime._extend_rank).  Ranks are only ever compared under equal
# (time, priority) prefixes, and contexts at one (time, priority) share a
# shape, so comparison is well-defined.
# ---------------------------------------------------------------------------

_times = st.floats(
    min_value=0.0, max_value=16.0, allow_nan=False, allow_infinity=False
).map(lambda t: round(t, 6))
_priorities = st.integers(min_value=-2, max_value=5)
_ks = st.integers(min_value=0, max_value=7)


def _chain_ranks(depth):
    # Construction invariant: one (time, priority) level and one ordinal
    # per link of the lineage chain, newest level first / oldest k first.
    levels = st.lists(
        st.tuples(_times, _priorities), min_size=depth, max_size=depth
    ).map(tuple)
    ks = st.lists(_ks, min_size=depth, max_size=depth).map(tuple)
    return st.tuples(levels, st.just(()), ks)


_ranks = st.one_of(
    st.just(()), _chain_ranks(1), _chain_ranks(2), _chain_ranks(3)
)
token_strategy = st.tuples(_times, _priorities, _ranks, _ks)


class TestTokenOrder:
    @given(st.lists(token_strategy, min_size=2, max_size=32, unique=True))
    @settings(max_examples=200, deadline=None)
    def test_total_order(self, tokens):
        # Sorting never raises and induces a strict total order on the set.
        ordered = sorted(tokens)
        for a, b in zip(ordered, ordered[1:]):
            assert a < b or a == b
        assert sorted(ordered) == ordered

    @given(
        st.lists(token_strategy, min_size=2, max_size=32, unique=True),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_merge_is_interleaving_invariant(self, tokens, rng):
        # However the shards interleave their emissions, the merged order
        # is the same: sorted() of any permutation is identical.
        reference = sorted(tokens)
        shuffled = list(tokens)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == reference

    @given(st.lists(token_strategy, min_size=1, max_size=16, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_time_priority_prefix_dominates(self, tokens):
        # The (time, priority) prefix always sorts first — a token can
        # never jump ahead of an earlier instant or phase, whatever its
        # lineage rank says.
        ordered = sorted(tokens)
        assert [t[:2] for t in ordered] == sorted(
            [t[:2] for t in tokens]
        )


# ---------------------------------------------------------------------------
# End-to-end properties on real runs.
# ---------------------------------------------------------------------------


def _run_simulated(runtime, seed, latency, workers, partition):
    config = SimulationConfig(
        duration_seconds=3.0,
        warmup_seconds=0.5,
        stw_seconds=4.0,
        capacity_fraction=0.5,
        network_latency_seconds=latency,
        runtime=runtime,
        workers=workers,
        shard_partition=partition if runtime == "sharded" else {},
        retain_result_values=True,
        seed=seed,
    )
    spec = WorkloadSpec(
        num_queries=3,
        fragments_per_query=(1, 2),
        kinds=("avg-all", "cov"),
        source_rate=30.0,
        seed=seed,
    )
    system = build_federation(
        generate_complex_workload(spec), num_nodes=3, config=config
    )
    result = Simulator(system, config).run()
    return (
        result.per_query_sic,
        result.sic_time_series,
        result.result_values,
        result.messages_sent,
        result.bytes_sent,
    )


class TestEndToEndStability:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        latency=st.sampled_from([0.005, 0.02, 0.05]),
        workers=st.integers(min_value=1, max_value=4),
        shards=st.lists(
            st.integers(min_value=0, max_value=3), min_size=3, max_size=3
        ),
    )
    @settings(max_examples=8, deadline=None)
    def test_sharded_identical_for_random_seeds_and_partitions(
        self, seed, latency, workers, shards
    ):
        partition = {
            f"node-{i}": shard % workers for i, shard in enumerate(shards)
        }
        assert _run_simulated(
            "sharded", seed, latency, workers, partition
        ) == _run_simulated("event", seed, latency, workers, {})


def _delivery_log(kind, latency=0.02, workers=3):
    """Run a federation recording every dispatch each receiver observes."""
    system = make_local_system(latency)
    log = []
    original = system.dispatch

    def recording(message, now):
        if message.kind == "data":
            detail = (
                message.target_fragment_id,
                len(message.batch),
                message.batch.header.sic,
            )
        elif message.kind == "result":
            detail = (len(message.batch), message.batch.header.sic)
        elif message.kind == "sic_update":
            detail = (message.query_id, message.sic_value, message.sent_at)
        else:
            detail = ()
        log.append((message.destination, now, message.kind, detail))
        return original(message, now)

    system.dispatch = recording
    runtime = make_runtime(system, kind, workers=workers)
    runtime.run(5.0)
    runtime.close()
    per_receiver = {}
    for destination, now, mkind, detail in log:
        per_receiver.setdefault(destination, []).append((now, mkind, detail))
    return per_receiver


class TestPerLinkFifo:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_each_receiver_sees_the_single_heap_sequence(self, workers):
        sharded = _delivery_log("sharded", workers=workers)
        event = _delivery_log("event")
        assert sharded == event
        # Delivery times at every receiver are non-decreasing (FIFO links:
        # uniform latency never reorders a link's traffic).
        for deliveries in sharded.values():
            times = [t for t, _, _ in deliveries]
            assert times == sorted(times)


class TestTokenCollection:
    def test_runtime_tokens_unique_and_sortable(self):
        system = make_local_system(0.02)
        runtime = make_runtime(system, "sharded", workers=3)
        tokens = []
        inner = system.network.sequence_hook

        def tap():
            token = inner()
            tokens.append(token)
            return token

        system.network.sequence_hook = tap
        runtime.run(4.0)
        runtime.close()
        assert len(tokens) > 100
        assert len(set(tokens)) == len(tokens)
        ordered = sorted(tokens)  # totality on real emissions: never raises
        assert len(ordered) == len(tokens)
