"""Property-based tests (hypothesis) for SIC propagation invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import jains_index
from repro.core.sic import propagate_sic, query_result_sic, source_tuple_sic
from repro.core.tuples import Tuple
from repro.streaming.operators import Average, Filter, TopK
from repro.streaming.windows import TimeWindow

sic_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_counts = st.integers(min_value=1, max_value=10_000)


class TestEquationInvariants:
    @given(per_stw=st.floats(min_value=0.1, max_value=1e6), sources=st.integers(1, 1000))
    def test_source_sic_is_positive_and_at_most_one_per_source_share(self, per_stw, sources):
        value = source_tuple_sic(per_stw, sources)
        assert value > 0.0
        # A single tuple can never carry more than the whole query's content.
        assert value <= 1.0 / max(per_stw, 1e-12) + 1e-9

    @given(
        inputs=st.lists(sic_values, min_size=0, max_size=50),
        outputs=st.integers(min_value=1, max_value=50),
    )
    def test_propagation_conserves_total_sic(self, inputs, outputs):
        shares = propagate_sic(inputs, outputs)
        assert len(shares) == outputs
        assert math.isclose(sum(shares), sum(inputs), rel_tol=1e-9, abs_tol=1e-12)
        assert all(s >= 0 for s in shares)

    @given(inputs=st.lists(sic_values, min_size=1, max_size=50))
    def test_result_sic_equals_sum(self, inputs):
        assert math.isclose(query_result_sic(inputs), sum(inputs), rel_tol=1e-9)


class TestJainsIndexProperties:
    @given(values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_bounds(self, values):
        index = jains_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        values=st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=30),
        factor=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_scale_invariance(self, values, factor):
        assert math.isclose(
            jains_index(values), jains_index([v * factor for v in values]), rel_tol=1e-6
        )

    @given(value=st.floats(min_value=0.001, max_value=10.0), n=st.integers(1, 40))
    def test_equal_values_are_perfectly_fair(self, value, n):
        assert math.isclose(jains_index([value] * n), 1.0, rel_tol=1e-9)


class TestOperatorSicConservation:
    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
        sic=st.floats(min_value=1e-6, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_carries_full_window_sic(self, values, sic):
        op = Average("v", window_seconds=1.0)
        tuples = [
            Tuple(timestamp=0.1 + 0.8 * i / len(values), sic=sic, values={"v": v})
            for i, v in enumerate(values)
        ]
        op.ingest(tuples)
        out = op.advance(now=2.0)
        assert len(out) == 1
        assert math.isclose(out[0].sic, sic * len(values), rel_tol=1e-9)

    @given(
        values=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
        threshold=st.floats(min_value=0.0, max_value=100.0),
        sic=st.floats(min_value=1e-6, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_filter_never_creates_sic(self, values, threshold, sic):
        op = Filter.field_threshold("v", ">=", threshold)
        tuples = [Tuple(0.1 * i, sic, {"v": v}) for i, v in enumerate(values)]
        op.ingest(tuples)
        out = op.advance(now=100.0)
        total_in = sic * len(values)
        total_out = sum(t.sic for t in out)
        assert total_out <= total_in + 1e-9
        assert math.isclose(total_out + op.lost_sic, total_in, rel_tol=1e-9)

    @given(
        k=st.integers(min_value=1, max_value=10),
        count=st.integers(min_value=1, max_value=40),
        sic=st.floats(min_value=1e-6, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_topk_conserves_sic_when_output_nonempty(self, k, count, sic):
        op = TopK(k=k, value_field="value", id_field="id", window_seconds=1.0)
        tuples = [
            Tuple(0.1 + 0.8 * i / count, sic, {"id": f"m{i}", "value": float(i)})
            for i in range(count)
        ]
        op.ingest(tuples)
        out = op.advance(now=2.0)
        assert len(out) == min(k, count)
        assert math.isclose(sum(t.sic for t in out), sic * count, rel_tol=1e-9)


class TestWindowProperties:
    @given(
        timestamps=st.lists(
            st.floats(min_value=0.0, max_value=9.99), min_size=1, max_size=60
        ),
        slide=st.sampled_from([0.25, 0.5, 1.0]),
        sic=st.floats(min_value=1e-6, max_value=0.1),
    )
    @settings(max_examples=60, deadline=None)
    def test_sliding_window_conserves_sic_once_all_panes_close(
        self, timestamps, slide, sic
    ):
        window = TimeWindow(1.0, slide_seconds=slide, allowed_lateness=0.0)
        window.insert([Tuple(ts, sic, {"v": 1.0}) for ts in timestamps])
        panes = window.advance(now=1_000.0)
        total = sum(p.total_sic for p in panes)
        assert math.isclose(total, sic * len(timestamps), rel_tol=1e-6)
        assert window.pending_count() == 0
