"""Property-based tests for the shedders (Algorithm 1 invariants)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance_sic import BalanceSicConfig, BalanceSicPolicy
from repro.core.shedding import BalanceSicShedder, RandomShedder, TailDropShedder
from repro.core.tuples import Batch, Tuple


@st.composite
def buffers(draw, max_queries=6, max_batches=6, max_tuples=12):
    """Random input-buffer contents plus reported SIC values."""
    num_queries = draw(st.integers(1, max_queries))
    batches = []
    reported = {}
    for q in range(num_queries):
        query_id = f"q{q}"
        reported[query_id] = draw(st.floats(min_value=0.0, max_value=1.0))
        for b in range(draw(st.integers(1, max_batches))):
            count = draw(st.integers(1, max_tuples))
            sic = draw(st.floats(min_value=1e-6, max_value=0.05))
            tuples = [
                Tuple(timestamp=b + i * 0.01, sic=sic, values={"v": i})
                for i in range(count)
            ]
            batches.append(Batch(query_id, tuples))
    return batches, reported


class TestBalanceSicInvariants:
    @given(data=buffers(), capacity=st.integers(0, 200))
    @settings(max_examples=80, deadline=None)
    def test_capacity_respected_and_tuples_conserved(self, data, capacity):
        batches, reported = data
        policy = BalanceSicPolicy(rng=random.Random(0))
        decision = policy.select(batches, capacity, reported)
        total = sum(len(b) for b in batches)
        if total > capacity:
            assert decision.kept_tuples <= capacity
        assert decision.kept_tuples + decision.shed_tuples == total

    @given(data=buffers(), capacity=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_kept_sic_never_exceeds_buffered_sic(self, data, capacity):
        batches, reported = data
        policy = BalanceSicPolicy(rng=random.Random(1))
        decision = policy.select(batches, capacity, reported)
        buffered = sum(b.sic for b in batches)
        kept = sum(b.sic for b in decision.kept)
        assert kept <= buffered + 1e-9

    @given(data=buffers(), capacity=st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_capacity_is_fully_used_under_overload(self, data, capacity):
        batches, reported = data
        policy = BalanceSicPolicy(rng=random.Random(2))
        decision = policy.select(batches, capacity, reported)
        total = sum(len(b) for b in batches)
        if total > capacity:
            # Splitting is enabled by default, so the node never wastes capacity.
            assert decision.kept_tuples == capacity

    @given(data=buffers(), capacity=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_given_seed(self, data, capacity):
        batches, reported = data
        d1 = BalanceSicPolicy(rng=random.Random(7)).select(batches, capacity, reported)
        d2 = BalanceSicPolicy(rng=random.Random(7)).select(batches, capacity, reported)
        assert d1.kept_tuples == d2.kept_tuples
        assert [len(b) for b in d1.kept] == [len(b) for b in d2.kept]

    @given(data=buffers(), capacity=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_without_splitting_whole_batches_only(self, data, capacity):
        batches, reported = data
        policy = BalanceSicPolicy(
            BalanceSicConfig(allow_batch_splitting=False), rng=random.Random(3)
        )
        decision = policy.select(batches, capacity, reported)
        original_sizes = {b.batch_id: len(b) for b in batches}
        for batch in decision.kept:
            assert original_sizes.get(batch.batch_id) == len(batch)


class TestAllSheddersInvariants:
    @given(data=buffers(), capacity=st.integers(0, 150))
    @settings(max_examples=50, deadline=None)
    def test_every_shedder_respects_capacity(self, data, capacity):
        batches, reported = data
        total = sum(len(b) for b in batches)
        for shedder in (
            BalanceSicShedder(seed=0),
            RandomShedder(seed=0),
            TailDropShedder(),
        ):
            decision = shedder.shed(batches, capacity, reported)
            if total > capacity:
                assert decision.kept_tuples <= capacity
            else:
                assert decision.kept_tuples == total
