"""SIC and tuple conservation under batch splitting, across all shedders.

Splitting a batch must never create or destroy tuples or SIC: for every
shedder, ``kept + shed`` must repartition the input buffer exactly — tuple
counts as integers, SIC within float tolerance — including the corner cases
that exercised the old ``_keep_prefix`` double-count bug: capacity 0,
single-tuple batches and splitting disabled.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balance_sic import BalanceSicConfig
from repro.core.shedding import (
    BalanceSicShedder,
    NoShedder,
    RandomShedder,
    TailDropShedder,
)
from repro.core.tuples import Batch, Tuple

SIC_TOLERANCE = 1e-9


def all_shedders(allow_splitting=True):
    return (
        BalanceSicShedder(
            config=BalanceSicConfig(allow_batch_splitting=allow_splitting), seed=0
        ),
        RandomShedder(seed=0, allow_splitting=allow_splitting),
        TailDropShedder(allow_splitting=allow_splitting),
        NoShedder(),
    )


@st.composite
def buffers(draw, max_queries=5, max_batches=5, max_tuples=10):
    num_queries = draw(st.integers(1, max_queries))
    batches = []
    reported = {}
    for q in range(num_queries):
        query_id = f"q{q}"
        reported[query_id] = draw(st.floats(min_value=0.0, max_value=1.0))
        for b in range(draw(st.integers(1, max_batches))):
            count = draw(st.integers(1, max_tuples))
            sic = draw(st.floats(min_value=1e-6, max_value=0.05))
            batches.append(
                Batch(
                    query_id,
                    [
                        Tuple(timestamp=b + i * 0.01, sic=sic, values={})
                        for i in range(count)
                    ],
                )
            )
    return batches, reported


def assert_conserved(batches, decision):
    total_tuples = sum(len(b) for b in batches)
    total_sic = sum(b.sic for b in batches)
    kept_tuples = sum(len(b) for b in decision.kept)
    shed_tuples = sum(len(b) for b in decision.shed)
    # The decision's own counters must agree with its batch lists: the old
    # _keep_prefix appended the full original of a split batch to `shed`,
    # so the lists double-counted the kept head.
    assert decision.kept_tuples == kept_tuples
    assert decision.shed_tuples == shed_tuples
    assert kept_tuples + shed_tuples == total_tuples
    kept_sic = sum(b.sic for b in decision.kept)
    shed_sic = sum(b.sic for b in decision.shed)
    assert math.isclose(
        kept_sic + shed_sic, total_sic, rel_tol=0, abs_tol=SIC_TOLERANCE
    )
    # Split headers must stay consistent with their tuples.
    for batch in list(decision.kept) + list(decision.shed):
        assert math.isclose(
            batch.sic,
            sum(t.sic for t in batch.tuples),
            rel_tol=0,
            abs_tol=SIC_TOLERANCE,
        )


class TestConservationProperties:
    @given(data=buffers(), capacity=st.integers(0, 120))
    @settings(max_examples=60, deadline=None)
    def test_all_shedders_conserve_with_splitting(self, data, capacity):
        batches, reported = data
        for shedder in all_shedders(allow_splitting=True):
            decision = shedder.shed(list(batches), capacity, reported)
            assert_conserved(batches, decision)

    @given(data=buffers(), capacity=st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_all_shedders_conserve_without_splitting(self, data, capacity):
        batches, reported = data
        for shedder in all_shedders(allow_splitting=False):
            decision = shedder.shed(list(batches), capacity, reported)
            assert_conserved(batches, decision)


class TestConservationCorners:
    def _batches(self, sizes, sic=0.01):
        return [
            Batch(
                f"q{i}",
                [Tuple(timestamp=float(j), sic=sic, values={}) for j in range(n)],
            )
            for i, n in enumerate(sizes)
        ]

    @pytest.mark.parametrize("shedder", all_shedders(), ids=lambda s: s.name)
    def test_capacity_zero_sheds_everything(self, shedder):
        batches = self._batches([3, 1, 4])
        decision = shedder.shed(list(batches), 0, {})
        assert_conserved(batches, decision)
        if shedder.name != "none":
            assert decision.kept_tuples == 0
            assert decision.shed_tuples == 8

    @pytest.mark.parametrize("shedder", all_shedders(), ids=lambda s: s.name)
    def test_single_tuple_batches(self, shedder):
        batches = self._batches([1] * 9)
        decision = shedder.shed(list(batches), 4, {})
        assert_conserved(batches, decision)
        # Single-tuple batches can never be split.
        for batch in decision.kept + decision.shed:
            assert len(batch) == 1

    @pytest.mark.parametrize(
        "shedder", all_shedders(allow_splitting=False), ids=lambda s: s.name
    )
    def test_splitting_disabled_keeps_batches_whole(self, shedder):
        batches = self._batches([5, 5, 5])
        originals = {id(b) for b in batches}
        decision = shedder.shed(list(batches), 7, {})
        assert_conserved(batches, decision)
        for batch in decision.kept + decision.shed:
            assert id(batch) in originals

    def test_random_shedder_split_sheds_only_remainder(self):
        # Regression for the _keep_prefix double count: capacity lands in the
        # middle of a batch, the shed list must contain the tail only.
        batches = self._batches([10])
        decision = RandomShedder(seed=0).shed(list(batches), 6, {})
        assert decision.kept_tuples == 6
        assert decision.shed_tuples == 4
        assert len(decision.shed) == 1
        assert len(decision.shed[0]) == 4

    def test_tail_drop_split_sheds_only_remainder(self):
        old = Batch("q0", [Tuple(timestamp=0.0, sic=0.01, values={}) for _ in range(4)])
        new = Batch("q1", [Tuple(timestamp=9.0, sic=0.01, values={}) for _ in range(4)])
        decision = TailDropShedder().shed([new, old], 6, {})
        assert [len(b) for b in decision.kept] == [4, 2]
        assert decision.kept[0].query_id == "q0"
        assert [len(b) for b in decision.shed] == [2]
        assert decision.shed[0].query_id == "q1"
