"""Property-based tests for the reliable delivery channel.

Three transport invariants, checked over randomized fault behaviours:

* **Per-link FIFO** — whatever delay jitter reorders the physical copies,
  the application receives each link's messages in send order (the receiver
  holds out-of-order arrivals until the gap fills).
* **Dedup idempotence** — arbitrary duplication of physical copies never
  produces a second application delivery; every extra copy is counted.
* **Bounded retransmit buffer** — sender-side memory is capped by the
  configured window no matter the loss rate; overflow and retry exhaustion
  are expired *with accounting*, so the ledger still closes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import Batch, Tuple
from repro.federation.network import (
    DataMessage,
    Network,
    ReliabilityConfig,
    UniformLatency,
)


def data_message(label, destination="dst"):
    batch = Batch("q", [Tuple(0.0, 0.1, {"v": 1})])
    return DataMessage(destination=destination, batch=batch, target_fragment_id=label)


def pump(network):
    """Deliver everything until the network is fully quiescent."""
    delivered = []
    while network.in_flight():
        delivered.extend(network.deliver_due(network.next_delivery_time()))
    return delivered


class TestFifoUnderJitter:
    @given(
        seed=st.integers(0, 10_000),
        jitter=st.floats(min_value=0.0, max_value=0.2),
        count=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_per_link_order_is_send_order(self, seed, jitter, count):
        rng = random.Random(seed)
        network = Network(UniformLatency(0.005), reliability=ReliabilityConfig())

        def policy(message, source, destination, sent_at, latency):
            return (sent_at + latency + rng.random() * jitter,)

        network.fault_policy = policy
        labels = [f"m{i}" for i in range(count)]
        for i, label in enumerate(labels):
            network.send(data_message(label), sent_at=i * 0.001, source="src")
        delivered = [m.target_fragment_id for m in pump(network)]
        assert delivered == labels
        # The jitter genuinely reordered or delayed copies is irrelevant to
        # the ledger: everything sent was delivered exactly once.
        assert network.stats.sent["data"] == network.stats.delivered["data"]
        assert network.reorder_buffered() == 0
        assert network.reliable_pending() == 0

    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(2, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_independent_links_do_not_block_each_other(self, seed, count):
        rng = random.Random(seed)
        network = Network(UniformLatency(0.005), reliability=ReliabilityConfig())

        def policy(message, source, destination, sent_at, latency):
            return (sent_at + latency + rng.random() * 0.05,)

        network.fault_policy = policy
        for i in range(count):
            network.send(data_message(f"a{i}", "dst-a"), sent_at=i * 0.001, source="src")
            network.send(data_message(f"b{i}", "dst-b"), sent_at=i * 0.001, source="src")
        delivered = [m.target_fragment_id for m in pump(network)]
        assert [l for l in delivered if l.startswith("a")] == [f"a{i}" for i in range(count)]
        assert [l for l in delivered if l.startswith("b")] == [f"b{i}" for i in range(count)]


class TestDedupIdempotence:
    @given(
        copies=st.integers(1, 5),
        count=st.integers(1, 25),
        spacing=st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=60, deadline=None)
    def test_each_message_delivered_exactly_once(self, copies, count, spacing):
        network = Network(UniformLatency(0.005), reliability=ReliabilityConfig())

        def policy(message, source, destination, sent_at, latency):
            base = sent_at + latency
            if message.kind == "data":
                return tuple(base + j * spacing for j in range(copies))
            return (base,)

        network.fault_policy = policy
        labels = [f"m{i}" for i in range(count)]
        for i, label in enumerate(labels):
            network.send(data_message(label), sent_at=i * 0.001, source="src")
        delivered = [m.target_fragment_id for m in pump(network)]
        assert delivered == labels
        # Every extra physical copy was received and suppressed, visibly.
        assert network.stats.delivered["data"] == count
        assert network.stats.duplicates.get("data", 0) == (copies - 1) * count
        # Duplicates re-trigger acks (the copy may mean a lost ack), but
        # never a second application delivery.
        assert network.stats.acks_sent >= count


class TestBoundedRetransmitBuffer:
    @given(
        window=st.integers(1, 16),
        overflow=st.integers(0, 20),
        max_retries=st.integers(0, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_memory_bounded_and_overflow_accounted(self, window, overflow, max_retries):
        # A link whose data transmissions are all eaten: unacked state must
        # never exceed the window, and every send beyond it — plus every
        # message whose retries run out — must be expired with accounting.
        config = ReliabilityConfig(window=window, max_retries=max_retries)
        network = Network(UniformLatency(0.005), reliability=config)

        def policy(message, source, destination, sent_at, latency):
            if message.kind == "data":
                return ()  # total blackout for payloads
            return (sent_at + latency,)

        network.fault_policy = policy
        total = window + overflow
        for i in range(total):
            network.send(data_message(f"m{i}"), sent_at=i * 0.001, source="src")
            assert network.reliable_pending() <= window
        assert network.reliable_pending() == window
        # Overflowing sends were refused up front, with accounting.
        assert network.stats.expired.get("data", 0) == overflow
        pump(network)
        # Retries exhausted: the whole window expired too; ledger closes at
        # sent == delivered (0) + expired (all), nothing silently lost.
        stats = network.stats
        assert network.reliable_pending() == 0
        assert stats.expired["data"] == total
        assert stats.sent["data"] == stats.delivered.get("data", 0) + stats.expired["data"]
        assert stats.retransmits.get("data", 0) == window * max_retries

    @given(
        seed=st.integers(0, 10_000),
        max_drops=st.integers(0, 8),
        count=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_ledger_closes_under_per_message_loss(self, seed, max_drops, count):
        # Each message's first n transmission attempts are eaten, n drawn per
        # message up to max_drops < max_retries, so eventual delivery is
        # guaranteed (not merely probable): everything arrives, in order,
        # exactly once, and the ledger closes exactly.
        rng = random.Random(seed)
        network = Network(UniformLatency(0.005), reliability=ReliabilityConfig())
        drops_for = {}
        attempts = {}

        def policy(message, source, destination, sent_at, latency):
            if message.kind != "data":
                return (sent_at + latency,)
            key = id(message)
            planned = drops_for.setdefault(key, rng.randint(0, max_drops))
            attempts[key] = attempts.get(key, 0) + 1
            if attempts[key] <= planned:
                return ()
            return (sent_at + latency,)

        network.fault_policy = policy
        labels = [f"m{i}" for i in range(count)]
        for i, label in enumerate(labels):
            network.send(data_message(label), sent_at=i * 0.001, source="src")
        delivered = [m.target_fragment_id for m in pump(network)]
        stats = network.stats
        assert delivered == labels
        assert stats.sent["data"] == stats.delivered["data"]
        assert stats.expired.get("data", 0) == 0
        assert stats.retransmits.get("data", 0) == sum(drops_for.values())
        assert network.reliable_pending() == 0
        assert network.reorder_buffered() == 0
