"""Unit tests for query coordinators."""

import pytest

from repro.core.stw import StwConfig
from repro.core.tuples import Batch, Tuple
from repro.federation.coordinator import CoordinatorRegistry, QueryCoordinator


def result_batch(query="q", sic=0.1, ts=1.0):
    return Batch(query, [Tuple(ts, sic, {"avg": 42.0})])


class TestQueryCoordinator:
    def test_records_results_and_tracks_sic(self):
        coordinator = QueryCoordinator("q", StwConfig(10.0, 1.0), retain_results=True)
        coordinator.record_result(result_batch(sic=0.2), now=1.0)
        assert coordinator.result_tuples == 1
        assert coordinator.current_sic(now=1.5) > 0.0
        assert coordinator.result_values[0]["avg"] == 42.0
        assert "_ts" in coordinator.result_values[0]

    def test_result_retention_is_opt_in_and_bounded(self):
        # Default: SIC accounting only, no payload retention (memory bound).
        plain = QueryCoordinator("q", StwConfig(10.0, 1.0))
        plain.record_result(result_batch(sic=0.2), now=1.0)
        assert plain.result_tuples == 1
        assert len(plain.result_values) == 0
        # Opt-in with a cap: oldest payloads are evicted first.
        capped = QueryCoordinator(
            "q", StwConfig(10.0, 1.0), retain_results=True, max_retained_results=3
        )
        for i in range(5):
            capped.record_result(result_batch(sic=0.1, ts=float(i)), now=float(i))
        assert capped.result_tuples == 5
        assert len(capped.result_values) == 3
        assert [v["_ts"] for v in capped.result_values] == [2.0, 3.0, 4.0]

    def test_rejects_non_positive_retention_cap(self):
        with pytest.raises(ValueError):
            QueryCoordinator("q", StwConfig(), max_retained_results=0)

    def test_updates_only_sent_to_registered_nodes(self):
        coordinator = QueryCoordinator("q", StwConfig(), update_interval=0.25)
        coordinator.register_hosting_node("n1")
        coordinator.register_hosting_node("n2")
        updates = coordinator.make_updates(now=0.25)
        assert {u["node_id"] for u in updates} == {"n1", "n2"}
        assert all(u["query_id"] == "q" for u in updates)

    def test_updates_respect_the_interval(self):
        coordinator = QueryCoordinator("q", StwConfig(), update_interval=1.0)
        coordinator.register_hosting_node("n1")
        assert coordinator.make_updates(now=0.0)  # first call always due
        assert coordinator.make_updates(now=0.5) == []
        assert coordinator.make_updates(now=1.0)

    def test_rejects_bad_update_interval(self):
        with pytest.raises(ValueError):
            QueryCoordinator("q", StwConfig(), update_interval=0.0)

    def test_snapshot_builds_history(self):
        coordinator = QueryCoordinator("q", StwConfig(10.0, 1.0))
        coordinator.record_result(result_batch(sic=0.1), now=1.0)
        coordinator.snapshot(now=1.0)
        coordinator.snapshot(now=2.0)
        assert len(coordinator.tracker.history) == 2


class TestCoordinatorRegistry:
    def test_coordinator_created_once_per_query(self):
        registry = CoordinatorRegistry(StwConfig())
        a = registry.coordinator("q1")
        b = registry.coordinator("q1")
        assert a is b
        assert "q1" in registry
        assert len(registry) == 1

    def test_remove_tears_down_and_get_does_not_resurrect(self):
        registry = CoordinatorRegistry(StwConfig())
        registry.coordinator("q1")
        removed = registry.remove("q1")
        assert removed.query_id == "q1"
        assert "q1" not in registry
        assert registry.get("q1") is None  # no auto-create on the get path
        with pytest.raises(KeyError):
            registry.remove("q1")

    def test_current_and_mean_sic_per_query(self):
        registry = CoordinatorRegistry(StwConfig(10.0, 1.0))
        registry.coordinator("q1").record_result(result_batch("q1", sic=0.3), now=1.0)
        registry.coordinator("q2").record_result(result_batch("q2", sic=0.1), now=1.0)
        current = registry.current_sic_values(now=1.5)
        assert current["q1"] > current["q2"]
        for coordinator in registry.all():
            coordinator.snapshot(now=1.5)
        means = registry.mean_sic_per_query()
        assert set(means) == {"q1", "q2"}
