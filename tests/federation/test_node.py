"""Unit tests for the THEMIS node (input buffer, overload detection, shedding)."""

import pytest

from repro.core.shedding import BalanceSicShedder, NoShedder
from repro.core.stw import StwConfig
from repro.core.tuples import Batch, Tuple
from repro.federation.node import FspsNode
from repro.streaming.operators import Average, OutputOperator, SourceReceiver
from repro.streaming.query import QueryGraph


def single_fragment(query_id="q", source_id="src"):
    graph = QueryGraph(query_id)
    receiver = graph.add_operator(SourceReceiver(source_id))
    avg = graph.add_operator(Average("v", window_seconds=1.0))
    output = graph.add_operator(OutputOperator())
    graph.connect(receiver, avg)
    graph.connect(avg, output)
    graph.bind_source(source_id, receiver)
    graph.set_root(output)
    fragments = graph.partition({op: "f0" for op in graph.operators})
    return next(iter(fragments.values()))


def source_batch(query_id, count, source_id="src", sic=0.01, start=0.0):
    return Batch(
        query_id,
        [
            Tuple(start + i * 0.01, sic, {"v": float(i)}, source_id=source_id)
            for i in range(count)
        ],
        fragment_id=f"{query_id}/f0",
    )


def make_node(budget=50.0, shedder=None):
    return FspsNode(
        node_id="n0",
        shedder=shedder or BalanceSicShedder(seed=0),
        budget_per_interval=budget,
        stw_config=StwConfig(stw_seconds=5.0, slide_seconds=0.25),
    )


class TestHosting:
    def test_host_fragment_and_hosted_queries(self):
        node = make_node()
        node.host_fragment(single_fragment("q1", "src1"))
        node.host_fragment(single_fragment("q2", "src2"))
        assert node.hosted_queries() == ["q1", "q2"]

    def test_duplicate_fragment_rejected(self):
        node = make_node()
        fragment = single_fragment("q1")
        node.host_fragment(fragment)
        with pytest.raises(ValueError):
            node.host_fragment(fragment)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            FspsNode("n0", NoShedder(), budget_per_interval=0.0)


class TestOverloadDetection:
    def test_not_overloaded_when_under_capacity(self):
        node = make_node(budget=1000.0)
        node.host_fragment(single_fragment("q1", "src"))
        node.enqueue(source_batch("q1", 10))
        result = node.tick(now=0.25)
        assert not result.overloaded
        assert result.shed_tuples == 0
        assert result.kept_tuples == 10

    def test_overloaded_when_buffer_exceeds_capacity(self):
        node = make_node(budget=10.0)
        node.host_fragment(single_fragment("q1", "src"))
        node.enqueue(source_batch("q1", 200))
        result = node.tick(now=0.25)
        assert result.overloaded
        assert result.shed_tuples > 0
        assert result.kept_tuples <= result.capacity

    def test_stats_accumulate_over_ticks(self):
        node = make_node(budget=10.0)
        node.host_fragment(single_fragment("q1", "src"))
        for tick in range(4):
            node.enqueue(source_batch("q1", 100, start=tick * 0.25))
            node.tick(now=(tick + 1) * 0.25)
        assert node.stats.ticks == 4
        assert node.stats.received_tuples == 400
        assert node.stats.shed_tuples > 0
        assert node.stats.shed_fraction > 0.0


class TestProcessing:
    def test_results_emitted_after_window_closes(self):
        node = make_node(budget=10_000.0)
        node.host_fragment(single_fragment("q1", "src"))
        results = []
        for tick in range(10):
            start = tick * 0.25
            node.enqueue(source_batch("q1", 20, start=start))
            outcome = node.tick(now=start + 0.25)
            results.extend(outcome.results)
        assert results, "windowed results should have been produced"
        assert all(b.query_id == "q1" for b in results)
        assert all(t.sic > 0 for b in results for t in b)

    def test_cost_model_learns_from_processing(self):
        node = make_node(budget=10_000.0)
        node.host_fragment(single_fragment("q1", "src"))
        initial_capacity = node.cost_model.capacity(node.budget_per_interval)
        for tick in range(5):
            node.enqueue(source_batch("q1", 50, start=tick * 0.25))
            node.tick(now=(tick + 1) * 0.25)
        assert node.cost_model.observations > 0
        assert node.cost_model.capacity(node.budget_per_interval) != initial_capacity


class TestSicView:
    def test_coordinator_updates_are_used_when_enabled(self):
        node = make_node()
        node.host_fragment(single_fragment("q1", "src"))
        node.receive_sic_update("q1", 0.7)
        view = node._current_sic_view(now=1.0)
        assert view["q1"] == pytest.approx(0.7)

    def test_local_estimate_used_when_updates_disabled(self):
        node = make_node()
        node.host_fragment(single_fragment("q1", "src"))
        node.set_coordinator_updates(False)
        node.receive_sic_update("q1", 0.7)
        view = node._current_sic_view(now=1.0)
        assert view["q1"] == pytest.approx(0.0)  # nothing kept locally yet

    def test_unknown_batches_are_dropped_silently(self):
        node = make_node(budget=1000.0)
        node.host_fragment(single_fragment("q1", "src"))
        foreign = source_batch("other-query", 5, source_id="elsewhere")
        node.enqueue(foreign)
        result = node.tick(now=0.25)
        assert result.results == []
