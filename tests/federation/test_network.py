"""Unit tests for the inter-site network model."""

import pytest

from repro.core.tuples import Batch, Tuple
from repro.federation.network import (
    DataMessage,
    LatencyMatrix,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)


def batch(query="q", n=3):
    return Batch(query, [Tuple(0.1 * i, 0.1, {"v": i}) for i in range(n)])


class TestLatencyModels:
    def test_uniform_latency_zero_for_same_endpoint(self):
        model = UniformLatency(0.005)
        assert model.latency("a", "a") == 0.0
        assert model.latency("a", "b") == 0.005

    def test_uniform_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformLatency(-1.0)

    def test_latency_matrix_uses_pairs_and_default(self):
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "b", 0.05)
        assert model.latency("a", "b") == 0.05
        assert model.latency("b", "a") == 0.05
        assert model.latency("a", "c") == 0.005
        assert model.latency("c", "c") == 0.0

    def test_latency_matrix_asymmetric_pairs_via_constructor(self):
        model = LatencyMatrix(
            default_seconds=0.005,
            pairs={("a", "b"): 0.05, ("b", "a"): 0.01},
        )
        assert model.latency("a", "b") == 0.05
        assert model.latency("b", "a") == 0.01

    def test_latency_matrix_one_way_set_latency(self):
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "b", 0.08, symmetric=False)
        assert model.latency("a", "b") == 0.08
        # The reverse direction keeps the default until set explicitly.
        assert model.latency("b", "a") == 0.005
        model.set_latency("b", "a", 0.02, symmetric=False)
        assert model.latency("a", "b") == 0.08
        assert model.latency("b", "a") == 0.02


class TestMessages:
    def test_data_message_size_includes_metadata(self):
        message = DataMessage(destination="n0", batch=batch(), target_fragment_id="f")
        assert message.size_bytes() > batch().meta_data_bytes() - 1

    def test_sic_update_message_is_30_bytes(self):
        message = SicUpdateMessage(destination="n0", query_id="q", sic_value=0.5)
        assert message.size_bytes() == 30


class TestNetwork:
    def test_delivery_after_latency(self):
        network = Network(UniformLatency(0.05))
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        deliver_at = network.send(message, sent_at=1.0, source="n0")
        assert deliver_at == pytest.approx(1.05)
        assert network.deliver_due(1.04) == []
        assert network.deliver_due(1.05) == [message]
        assert network.in_flight() == 0

    def test_delivery_order_is_by_time_then_send_order(self):
        network = Network(UniformLatency(0.0))
        first = SicUpdateMessage(destination="n1", query_id="a", sic_value=0.1)
        second = SicUpdateMessage(destination="n1", query_id="b", sic_value=0.2)
        network.send(first, sent_at=1.0, source="c")
        network.send(second, sent_at=1.0, source="c")
        delivered = network.deliver_due(2.0)
        assert [m.query_id for m in delivered] == ["a", "b"]

    def test_counters_and_bytes(self):
        network = Network(UniformLatency(0.0))
        network.send(ResultMessage(destination="coord", batch=batch()), 0.0, "n0")
        network.send(
            SicUpdateMessage(destination="n0", query_id="q", sic_value=0.1), 0.0, "c"
        )
        assert network.sent_messages == 2
        assert network.bytes_sent > 30
        network.deliver_due(10.0)
        assert network.delivered_messages == 2

    def test_next_delivery_time(self):
        network = Network(UniformLatency(0.1))
        assert network.next_delivery_time() is None
        network.send(ResultMessage(destination="c", batch=batch()), 1.0, "n0")
        assert network.next_delivery_time() == pytest.approx(1.1)

    def test_per_pair_fifo_with_latency_matrix(self):
        # Each endpoint pair has a constant latency, so messages on the same
        # pair can never overtake each other — delivery is FIFO per pair even
        # when pairs with very different latencies interleave.
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "dst", 0.05)
        model.set_latency("b", "dst", 0.002)
        network = Network(model)
        order = []
        for i in range(3):
            sent_at = i * 0.01
            network.send(
                SicUpdateMessage(destination="dst", query_id=f"a{i}", sic_value=0.1),
                sent_at,
                "a",
            )
            order.append(f"a{i}")
            network.send(
                SicUpdateMessage(destination="dst", query_id=f"b{i}", sic_value=0.1),
                sent_at,
                "b",
            )
            order.append(f"b{i}")
        delivered = [m.query_id for m in network.deliver_due(10.0)]
        # Per-pair FIFO: each source's messages arrive in send order.
        assert [q for q in delivered if q.startswith("a")] == ["a0", "a1", "a2"]
        assert [q for q in delivered if q.startswith("b")] == ["b0", "b1", "b2"]
        # Global order follows delivery times: the fast pair's burst lands
        # before the slow pair's first message.
        assert delivered == ["b0", "b1", "b2", "a0", "a1", "a2"]
        assert delivered != order

    def test_same_delivery_time_across_pairs_keeps_send_order(self):
        # Two pairs tuned so messages sent at different times collide at the
        # same delivery instant: the tie-break is send order, deterministic.
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("slow", "dst", 0.1)
        model.set_latency("fast", "dst", 0.05)
        network = Network(model)
        network.send(
            SicUpdateMessage(destination="dst", query_id="s", sic_value=0.1),
            0.0,
            "slow",
        )
        network.send(
            SicUpdateMessage(destination="dst", query_id="f", sic_value=0.1),
            0.05,
            "fast",
        )
        delivered = [m.query_id for m in network.deliver_due(0.1)]
        assert delivered == ["s", "f"]
