"""Unit tests for the inter-site network model."""

import pytest

from repro.core.tuples import Batch, Tuple
from repro.federation.network import (
    DataMessage,
    LatencyMatrix,
    Network,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)


def batch(query="q", n=3):
    return Batch(query, [Tuple(0.1 * i, 0.1, {"v": i}) for i in range(n)])


class TestLatencyModels:
    def test_uniform_latency_zero_for_same_endpoint(self):
        model = UniformLatency(0.005)
        assert model.latency("a", "a") == 0.0
        assert model.latency("a", "b") == 0.005

    def test_uniform_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformLatency(-1.0)

    def test_latency_matrix_uses_pairs_and_default(self):
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "b", 0.05)
        assert model.latency("a", "b") == 0.05
        assert model.latency("b", "a") == 0.05
        assert model.latency("a", "c") == 0.005
        assert model.latency("c", "c") == 0.0


class TestMessages:
    def test_data_message_size_includes_metadata(self):
        message = DataMessage(destination="n0", batch=batch(), target_fragment_id="f")
        assert message.size_bytes() > batch().meta_data_bytes() - 1

    def test_sic_update_message_is_30_bytes(self):
        message = SicUpdateMessage(destination="n0", query_id="q", sic_value=0.5)
        assert message.size_bytes() == 30


class TestNetwork:
    def test_delivery_after_latency(self):
        network = Network(UniformLatency(0.05))
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        deliver_at = network.send(message, sent_at=1.0, source="n0")
        assert deliver_at == pytest.approx(1.05)
        assert network.deliver_due(1.04) == []
        assert network.deliver_due(1.05) == [message]
        assert network.in_flight() == 0

    def test_delivery_order_is_by_time_then_send_order(self):
        network = Network(UniformLatency(0.0))
        first = SicUpdateMessage(destination="n1", query_id="a", sic_value=0.1)
        second = SicUpdateMessage(destination="n1", query_id="b", sic_value=0.2)
        network.send(first, sent_at=1.0, source="c")
        network.send(second, sent_at=1.0, source="c")
        delivered = network.deliver_due(2.0)
        assert [m.query_id for m in delivered] == ["a", "b"]

    def test_counters_and_bytes(self):
        network = Network(UniformLatency(0.0))
        network.send(ResultMessage(destination="coord", batch=batch()), 0.0, "n0")
        network.send(
            SicUpdateMessage(destination="n0", query_id="q", sic_value=0.1), 0.0, "c"
        )
        assert network.sent_messages == 2
        assert network.bytes_sent > 30
        network.deliver_due(10.0)
        assert network.delivered_messages == 2

    def test_next_delivery_time(self):
        network = Network(UniformLatency(0.1))
        assert network.next_delivery_time() is None
        network.send(ResultMessage(destination="c", batch=batch()), 1.0, "n0")
        assert network.next_delivery_time() == pytest.approx(1.1)
