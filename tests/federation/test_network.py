"""Unit tests for the inter-site network model."""

import pytest

from repro.core.tuples import Batch, Tuple
from repro.federation.network import (
    DataMessage,
    HeartbeatMessage,
    LatencyMatrix,
    Network,
    ReliabilityConfig,
    ResultMessage,
    SicUpdateMessage,
    UniformLatency,
)


def batch(query="q", n=3):
    return Batch(query, [Tuple(0.1 * i, 0.1, {"v": i}) for i in range(n)])


class TestLatencyModels:
    def test_uniform_latency_zero_for_same_endpoint(self):
        model = UniformLatency(0.005)
        assert model.latency("a", "a") == 0.0
        assert model.latency("a", "b") == 0.005

    def test_uniform_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformLatency(-1.0)

    def test_latency_matrix_uses_pairs_and_default(self):
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "b", 0.05)
        assert model.latency("a", "b") == 0.05
        assert model.latency("b", "a") == 0.05
        assert model.latency("a", "c") == 0.005
        assert model.latency("c", "c") == 0.0

    def test_latency_matrix_asymmetric_pairs_via_constructor(self):
        model = LatencyMatrix(
            default_seconds=0.005,
            pairs={("a", "b"): 0.05, ("b", "a"): 0.01},
        )
        assert model.latency("a", "b") == 0.05
        assert model.latency("b", "a") == 0.01

    def test_latency_matrix_one_way_set_latency(self):
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "b", 0.08, symmetric=False)
        assert model.latency("a", "b") == 0.08
        # The reverse direction keeps the default until set explicitly.
        assert model.latency("b", "a") == 0.005
        model.set_latency("b", "a", 0.02, symmetric=False)
        assert model.latency("a", "b") == 0.08
        assert model.latency("b", "a") == 0.02


class TestMessages:
    def test_data_message_size_includes_metadata(self):
        message = DataMessage(destination="n0", batch=batch(), target_fragment_id="f")
        assert message.size_bytes() > batch().meta_data_bytes() - 1

    def test_sic_update_message_is_30_bytes(self):
        message = SicUpdateMessage(destination="n0", query_id="q", sic_value=0.5)
        assert message.size_bytes() == 30


class TestNetwork:
    def test_delivery_after_latency(self):
        network = Network(UniformLatency(0.05))
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        deliver_at = network.send(message, sent_at=1.0, source="n0")
        assert deliver_at == pytest.approx(1.05)
        assert network.deliver_due(1.04) == []
        assert network.deliver_due(1.05) == [message]
        assert network.in_flight() == 0

    def test_delivery_order_is_by_time_then_send_order(self):
        network = Network(UniformLatency(0.0))
        first = SicUpdateMessage(destination="n1", query_id="a", sic_value=0.1)
        second = SicUpdateMessage(destination="n1", query_id="b", sic_value=0.2)
        network.send(first, sent_at=1.0, source="c")
        network.send(second, sent_at=1.0, source="c")
        delivered = network.deliver_due(2.0)
        assert [m.query_id for m in delivered] == ["a", "b"]

    def test_counters_and_bytes(self):
        network = Network(UniformLatency(0.0))
        network.send(ResultMessage(destination="coord", batch=batch()), 0.0, "n0")
        network.send(
            SicUpdateMessage(destination="n0", query_id="q", sic_value=0.1), 0.0, "c"
        )
        assert network.sent_messages == 2
        assert network.bytes_sent > 30
        network.deliver_due(10.0)
        assert network.delivered_messages == 2

    def test_next_delivery_time(self):
        network = Network(UniformLatency(0.1))
        assert network.next_delivery_time() is None
        network.send(ResultMessage(destination="c", batch=batch()), 1.0, "n0")
        assert network.next_delivery_time() == pytest.approx(1.1)

    def test_per_pair_fifo_with_latency_matrix(self):
        # Each endpoint pair has a constant latency, so messages on the same
        # pair can never overtake each other — delivery is FIFO per pair even
        # when pairs with very different latencies interleave.
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("a", "dst", 0.05)
        model.set_latency("b", "dst", 0.002)
        network = Network(model)
        order = []
        for i in range(3):
            sent_at = i * 0.01
            network.send(
                SicUpdateMessage(destination="dst", query_id=f"a{i}", sic_value=0.1),
                sent_at,
                "a",
            )
            order.append(f"a{i}")
            network.send(
                SicUpdateMessage(destination="dst", query_id=f"b{i}", sic_value=0.1),
                sent_at,
                "b",
            )
            order.append(f"b{i}")
        delivered = [m.query_id for m in network.deliver_due(10.0)]
        # Per-pair FIFO: each source's messages arrive in send order.
        assert [q for q in delivered if q.startswith("a")] == ["a0", "a1", "a2"]
        assert [q for q in delivered if q.startswith("b")] == ["b0", "b1", "b2"]
        # Global order follows delivery times: the fast pair's burst lands
        # before the slow pair's first message.
        assert delivered == ["b0", "b1", "b2", "a0", "a1", "a2"]
        assert delivered != order

    def test_same_delivery_time_across_pairs_keeps_send_order(self):
        # Two pairs tuned so messages sent at different times collide at the
        # same delivery instant: the tie-break is send order, deterministic.
        model = LatencyMatrix(default_seconds=0.005)
        model.set_latency("slow", "dst", 0.1)
        model.set_latency("fast", "dst", 0.05)
        network = Network(model)
        network.send(
            SicUpdateMessage(destination="dst", query_id="s", sic_value=0.1),
            0.0,
            "slow",
        )
        network.send(
            SicUpdateMessage(destination="dst", query_id="f", sic_value=0.1),
            0.05,
            "fast",
        )
        delivered = [m.query_id for m in network.deliver_due(0.1)]
        assert delivered == ["s", "f"]

    def test_message_id_counter_is_per_instance(self):
        # Back-to-back simulations in one process must see identical
        # tie-break orders: a fresh network's delivery order cannot depend on
        # how many messages earlier networks sent.
        def run_sequence():
            network = Network(UniformLatency(0.0))
            for qid in ("a", "b", "c"):
                network.send(
                    SicUpdateMessage(destination="dst", query_id=qid, sic_value=0.1),
                    0.0,
                    "src",
                )
            return [m.query_id for m in network.deliver_due(1.0)]

        first = run_sequence()
        # Burn counter state on an unrelated instance in between.
        other = Network(UniformLatency(0.0))
        for _ in range(100):
            other.send(
                SicUpdateMessage(destination="x", query_id="noise", sic_value=0.0),
                0.0,
                "y",
            )
        assert run_sequence() == first


def pump(network):
    delivered = []
    while network.in_flight():
        delivered.extend(network.deliver_due(network.next_delivery_time()))
    return delivered


class TestFaultHooks:
    def test_fault_policy_can_drop_duplicate_and_delay(self):
        network = Network(UniformLatency(0.01))
        calls = []

        def policy(message, source, destination, sent_at, latency):
            calls.append((message.kind, source, destination))
            if message.kind == "sic_update":
                return ()  # drop
            return (sent_at + latency, sent_at + latency + 0.5)  # duplicate

        network.fault_policy = policy
        network.send(
            SicUpdateMessage(destination="n0", query_id="q", sic_value=0.1), 0.0, "c"
        )
        network.send(HeartbeatMessage(destination="c", node_id="n0"), 0.0, "n0")
        assert network.stats.dropped == {"sic_update": 1}
        # Best-effort duplication without the reliable channel reaches the
        # application twice — dedup is the reliable channel's job.
        delivered = pump(network)
        assert [m.kind for m in delivered] == ["heartbeat", "heartbeat"]
        assert calls[0] == ("sic_update", "c", "n0")

    def test_dead_endpoint_drops_at_send_and_at_delivery(self):
        network = Network(UniformLatency(0.01))
        network.send(HeartbeatMessage(destination="c", node_id="n0"), 0.0, "n0")
        network.dead_endpoints.add("c")  # dies while the beacon is in flight
        assert network.deliver_due(1.0) == []
        assert network.stats.dropped == {"heartbeat": 1}
        network.send(HeartbeatMessage(destination="c", node_id="n1"), 1.0, "n1")
        assert network.in_flight() == 0  # never put on the wire
        assert network.stats.dropped == {"heartbeat": 2}


class TestReliabilityConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(window=0)
        with pytest.raises(ValueError):
            ReliabilityConfig(min_rto_seconds=0.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(rto_rtt_multiplier=1.0)
        with pytest.raises(ValueError):
            ReliabilityConfig(backoff_factor=0.9)
        with pytest.raises(ValueError):
            ReliabilityConfig(min_rto_seconds=1.0, max_rto_seconds=0.5)
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)


class TestReliableChannel:
    def test_dropped_copy_is_retransmitted_and_delivered_once(self):
        network = Network(UniformLatency(0.01), reliability=ReliabilityConfig())
        attempts = []

        def policy(message, source, destination, sent_at, latency):
            if message.kind == "data":
                attempts.append(sent_at)
                if len(attempts) == 1:
                    return ()  # eat the first copy
            return (sent_at + latency,)

        network.fault_policy = policy
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        network.send(message, sent_at=0.0, source="n0")
        delivered = pump(network)
        assert delivered == [message]
        assert network.stats.retransmits == {"data": 1}
        assert network.stats.delivered == {"data": 1}
        assert network.reliable_pending() == 0
        # The retransmission happened one RTO after the original send.
        assert attempts[1] == pytest.approx(0.05)

    def test_lost_ack_causes_duplicate_which_is_suppressed(self):
        network = Network(UniformLatency(0.01), reliability=ReliabilityConfig())
        acks_seen = []

        def policy(message, source, destination, sent_at, latency):
            if message.kind == "ack":
                acks_seen.append(sent_at)
                if len(acks_seen) == 1:
                    return ()  # lose the first ack
            return (sent_at + latency,)

        network.fault_policy = policy
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        network.send(message, sent_at=0.0, source="n0")
        delivered = pump(network)
        # Delivered to the application exactly once despite the retransmit
        # the lost ack provoked; the duplicate copy was counted, and the
        # duplicate's re-ack finally cleared the sender's buffer.
        assert delivered == [message]
        assert network.stats.duplicates == {"data": 1}
        assert network.stats.retransmits == {"data": 1}
        assert len(acks_seen) == 2
        assert network.reliable_pending() == 0

    def test_retries_exhausted_expires_with_accounting(self):
        config = ReliabilityConfig(max_retries=3)
        network = Network(UniformLatency(0.01), reliability=config)
        network.fault_policy = lambda *a: ()  # total blackout
        message = DataMessage(destination="n1", batch=batch(n=4), target_fragment_id="f")
        network.send(message, sent_at=0.0, source="n0")
        pump(network)
        assert network.stats.expired == {"data": 1}
        assert network.stats.tuples_expired == {"data": 4}
        assert network.stats.retransmits == {"data": 3}
        assert network.reliable_pending() == 0

    def test_dead_destination_receives_backlog_exactly_once_after_repair(self):
        network = Network(UniformLatency(0.01), reliability=ReliabilityConfig())
        network.dead_endpoints.add("n1")
        message = DataMessage(destination="n1", batch=batch(), target_fragment_id="f")
        network.send(message, sent_at=0.0, source="n0")
        # While the endpoint is down the channel keeps retrying into the void.
        for _ in range(3):
            network.deliver_due(network.next_delivery_time())
        assert network.reliable_pending() == 1
        network.dead_endpoints.discard("n1")  # machine reboots
        delivered = pump(network)
        assert delivered == [message]
        assert network.stats.delivered == {"data": 1}
        assert network.reliable_pending() == 0

    def test_best_effort_kinds_bypass_the_reliable_channel(self):
        network = Network(UniformLatency(0.01), reliability=ReliabilityConfig())
        network.send(
            SicUpdateMessage(destination="n0", query_id="q", sic_value=0.1), 0.0, "c"
        )
        network.send(HeartbeatMessage(destination="c", node_id="n0"), 0.0, "n0")
        pump(network)
        assert network.reliable_pending() == 0
        assert network.stats.acks_sent == 0

    def test_bytes_delivered_and_wire_accounting(self):
        network = Network(UniformLatency(0.01), reliability=ReliabilityConfig())
        message = ResultMessage(destination="coord", batch=batch())
        network.send(message, sent_at=0.0, source="n0")
        pump(network)
        size = message.size_bytes()
        assert network.bytes_sent == size
        assert network.bytes_delivered == size
        # Physical bytes include the ack the receiver sent back.
        assert network.stats.bytes_wire == size + 20
        assert network.stats.acks_sent == 1
