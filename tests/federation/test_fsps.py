"""Integration-style unit tests for the federated system."""

import pytest

from repro.core.shedding import make_shedder
from repro.core.stw import StwConfig
from repro.federation.fsps import FederatedSystem
from repro.federation.network import Network, UniformLatency
from repro.federation.node import FspsNode
from repro.workloads.complex import make_avg_all_query, make_cov_query


def build_system(num_nodes=2, shedder="none", budget=1e9, latency=0.005,
                 enable_sic_updates=True, shedding_interval=0.25,
                 retain_results=False):
    stw = StwConfig(stw_seconds=6.0, slide_seconds=shedding_interval)
    system = FederatedSystem(
        stw_config=stw,
        shedding_interval=shedding_interval,
        network=Network(UniformLatency(latency)),
        enable_sic_updates=enable_sic_updates,
        retain_results=retain_results,
    )
    for i in range(num_nodes):
        system.add_node(
            FspsNode(
                node_id=f"node-{i}",
                shedder=make_shedder(shedder, seed=i),
                budget_per_interval=budget,
                stw_config=stw,
            )
        )
    return system


def deploy_two_fragment_query(system, query_id="q0", seed=0, rate=50.0):
    query = make_cov_query(query_id=query_id, num_fragments=2, rate=rate, seed=seed)
    order = query.fragment_order
    placement = {order[0]: "node-0", order[1]: "node-1"}
    system.deploy_query(query.query_id, query.fragments, query.sources, placement)
    return query


class TestDeployment:
    def test_deploy_registers_placement_and_coordinator(self):
        system = build_system()
        query = deploy_two_fragment_query(system)
        assert set(system.placement.values()) == {"node-0", "node-1"}
        coordinator = system.coordinators.coordinator(query.query_id)
        assert coordinator.hosting_nodes == {"node-0", "node-1"}

    def test_duplicate_query_rejected(self):
        system = build_system()
        deploy_two_fragment_query(system, "q0", seed=1)
        query = make_cov_query(query_id="q0", num_fragments=1, rate=10.0, seed=2)
        with pytest.raises(ValueError):
            system.deploy_query(
                query.query_id, query.fragments, query.sources,
                {fid: "node-0" for fid in query.fragments},
            )

    def test_placement_to_unknown_node_rejected(self):
        system = build_system(num_nodes=1)
        query = make_cov_query(query_id="qx", num_fragments=1, rate=10.0, seed=3)
        with pytest.raises(ValueError):
            system.deploy_query(
                query.query_id, query.fragments, query.sources,
                {fid: "node-42" for fid in query.fragments},
            )

    def test_duplicate_node_rejected(self):
        system = build_system(num_nodes=1)
        with pytest.raises(ValueError):
            system.add_node(
                FspsNode("node-0", make_shedder("none"), budget_per_interval=1.0)
            )


class TestExecution:
    def test_multi_fragment_query_produces_results_across_nodes(self):
        system = build_system(num_nodes=2, shedder="none")
        query = deploy_two_fragment_query(system, seed=5)
        system.run(12.0)
        coordinator = system.coordinators.coordinator(query.query_id)
        assert coordinator.result_tuples > 0
        assert coordinator.current_sic(system.now) > 0.5

    def test_perfect_processing_sic_close_to_one(self):
        system = build_system(num_nodes=2, shedder="none")
        deploy_two_fragment_query(system, seed=6, rate=80.0)
        system.run(15.0)
        sic_values = system.current_sic_per_query()
        assert all(v > 0.75 for v in sic_values.values())
        assert all(v < 1.1 for v in sic_values.values())

    def test_overload_causes_shedding_and_lower_sic(self):
        system = build_system(num_nodes=2, shedder="balance-sic", budget=15.0)
        deploy_two_fragment_query(system, seed=7, rate=200.0)
        system.run(12.0)
        assert system.total_shed_tuples() > 0
        sic_values = system.current_sic_per_query()
        assert all(v < 0.9 for v in sic_values.values())

    def test_fairness_summary_and_mean_sic(self):
        system = build_system(num_nodes=2, shedder="balance-sic", budget=30.0)
        deploy_two_fragment_query(system, "qa", seed=8, rate=100.0)
        deploy_two_fragment_query(system, "qb", seed=9, rate=100.0)
        system.run(12.0)
        summary = system.fairness_summary(skip_initial=10)
        assert summary.count == 2
        assert 0.0 < summary.jains_index <= 1.0

    def test_sic_update_messages_flow_when_enabled(self):
        system = build_system(num_nodes=2, shedder="balance-sic", budget=20.0)
        deploy_two_fragment_query(system, seed=10, rate=100.0)
        system.run(6.0)
        node = system.nodes["node-0"]
        assert node._reported_sic, "coordinator updates should reach the node"

    def test_no_sic_updates_when_disabled(self):
        system = build_system(
            num_nodes=2, shedder="balance-sic", budget=20.0, enable_sic_updates=False
        )
        deploy_two_fragment_query(system, seed=11, rate=100.0)
        system.run(6.0)
        assert not system.nodes["node-0"]._reported_sic

    def test_tree_deployment_of_avg_all_query(self):
        system = build_system(num_nodes=3, shedder="none", retain_results=True)
        query = make_avg_all_query(
            query_id="tree", num_fragments=3, sources_per_fragment=2, rate=40.0, seed=12
        )
        node_ids = system.node_ids()
        placement = {
            fragment_id: node_ids[i % len(node_ids)]
            for i, fragment_id in enumerate(query.fragment_order)
        }
        system.deploy_query(query.query_id, query.fragments, query.sources, placement)
        system.run(12.0)
        coordinator = system.coordinators.coordinator("tree")
        assert coordinator.result_tuples > 0
        # The merged average of gaussian(mean=50) data should be close to 50.
        averages = [v["avg"] for v in coordinator.result_values if "avg" in v]
        assert averages and abs(sum(averages) / len(averages) - 50.0) < 10.0

    def test_run_rejects_non_positive_duration(self):
        system = build_system()
        with pytest.raises(ValueError):
            system.run(0.0)
