"""Unit tests for fragment placement strategies."""

import pytest

from repro.federation.deployment import (
    ExplicitPlacement,
    Placement,
    RandomPlacement,
    RoundRobinPlacement,
    ZipfPlacement,
    make_placement_strategy,
)
from repro.workloads.complex import make_cov_query


def fragments_of(num_queries=4, num_fragments=2, seed=0):
    fragments = []
    for i in range(num_queries):
        query = make_cov_query(
            query_id=f"pq{i}-{seed}", num_fragments=num_fragments, rate=10.0, seed=seed + i
        )
        fragments.extend(query.fragment_list())
    return fragments


NODES = ["n0", "n1", "n2"]


class TestPlacement:
    def test_node_for_and_load_per_node(self):
        placement = Placement(assignments={"f1": "n0", "f2": "n0", "f3": "n1"})
        assert placement.node_for("f1") == "n0"
        assert placement.load_per_node() == {"n0": 2, "n1": 1}
        assert placement.fragments_on("n0") == ["f1", "f2"]
        assert len(placement) == 3

    def test_node_for_unknown_fragment_raises(self):
        with pytest.raises(KeyError):
            Placement().node_for("missing")


class TestRoundRobinPlacement:
    def test_spreads_fragments_evenly(self):
        fragments = fragments_of(num_queries=6, num_fragments=1, seed=10)
        placement = RoundRobinPlacement().place(fragments, NODES)
        loads = placement.load_per_node()
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_same_query_fragments_on_distinct_nodes(self):
        fragments = fragments_of(num_queries=3, num_fragments=2, seed=20)
        placement = RoundRobinPlacement().place(fragments, NODES)
        for query in {f.query_id for f in fragments}:
            nodes = {
                placement.node_for(f.fragment_id)
                for f in fragments
                if f.query_id == query
            }
            assert len(nodes) == 2

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            RoundRobinPlacement().place([], NODES)
        with pytest.raises(ValueError):
            RoundRobinPlacement().place(fragments_of(seed=30), [])


class TestRandomPlacement:
    def test_deterministic_per_seed(self):
        fragments = fragments_of(seed=40)
        p1 = RandomPlacement(seed=5).place(fragments, NODES)
        p2 = RandomPlacement(seed=5).place(fragments, NODES)
        assert p1.assignments == p2.assignments

    def test_places_every_fragment(self):
        fragments = fragments_of(seed=50)
        placement = RandomPlacement(seed=1).place(fragments, NODES)
        assert len(placement) == len(fragments)
        assert set(placement.assignments.values()) <= set(NODES)


class TestZipfPlacement:
    def test_skews_load_towards_first_nodes(self):
        fragments = fragments_of(num_queries=40, num_fragments=1, seed=60)
        placement = ZipfPlacement(exponent=1.5, seed=2).place(
            fragments, ["n0", "n1", "n2", "n3", "n4", "n5"]
        )
        loads = placement.load_per_node()
        assert loads.get("n0", 0) > loads.get("n5", 0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            ZipfPlacement(exponent=-1.0)


class TestExplicitPlacement:
    def test_uses_given_assignments(self):
        fragments = fragments_of(num_queries=1, num_fragments=2, seed=70)
        mapping = {fragments[0].fragment_id: "n0", fragments[1].fragment_id: "n1"}
        placement = ExplicitPlacement(mapping).place(fragments, NODES)
        assert placement.assignments == mapping

    def test_missing_or_unknown_assignment_raises(self):
        fragments = fragments_of(num_queries=1, num_fragments=2, seed=80)
        with pytest.raises(ValueError):
            ExplicitPlacement({}).place(fragments, NODES)
        bad = {f.fragment_id: "nope" for f in fragments}
        with pytest.raises(ValueError):
            ExplicitPlacement(bad).place(fragments, NODES)


class TestFactory:
    def test_resolves_names(self):
        assert isinstance(make_placement_strategy("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement_strategy("random"), RandomPlacement)
        assert isinstance(make_placement_strategy("zipf"), ZipfPlacement)
        assert isinstance(
            make_placement_strategy("explicit", explicit={"f": "n"}), ExplicitPlacement
        )

    def test_explicit_requires_mapping(self):
        with pytest.raises(ValueError):
            make_placement_strategy("explicit")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_placement_strategy("optimal")
